"""Stability detector: verdicts, windowed monitor, bisection driver."""

import pytest

from repro.sim import Environment
from repro.traffic import (
    AdmissionQueue,
    StabilityMonitor,
    max_sustainable_rate,
    stability_verdict,
)


class TestVerdict:
    def test_bounded_is_stable(self):
        v = stability_verdict([3.0, 4.0, 3.5, 3.8, 4.1, 3.9])
        assert v["stable"] is True
        assert v["reason"] == "bounded"

    def test_divergent_is_unstable(self):
        v = stability_verdict([2.0, 4.0, 8.0, 16.0, 32.0, 64.0])
        assert v["stable"] is False
        assert v["reason"] == "divergent"
        assert v["tail_depth"] > v["head_depth"]

    def test_shallow_tail_is_always_stable(self):
        """Growth ratio alone must not flag a near-empty queue (0.01 ->
        0.04 'quadrupled' but the system is obviously keeping up)."""
        v = stability_verdict([0.01, 0.01, 0.04, 0.04])
        assert v["stable"] is True

    def test_shedding_is_unstable_even_with_bounded_queues(self):
        """Admission control can hold depth flat by dropping work — that
        is saturation, not stability."""
        v = stability_verdict([1.0, 1.0, 1.0, 1.0], shed_rate=0.2)
        assert v["stable"] is False
        assert v["reason"] == "shedding"

    def test_small_shed_tolerated(self):
        v = stability_verdict([1.0, 1.0, 1.0, 1.0], shed_rate=0.01)
        assert v["stable"] is True

    def test_short_run_uses_absolute_bound(self):
        assert stability_verdict([0.5, 1.0])["reason"] == "short-run-bounded"
        assert stability_verdict([10.0])["stable"] is False

    def test_empty_run(self):
        v = stability_verdict([])
        assert v["stable"] is True


class TestMonitor:
    def test_window_means_integrate_depth(self):
        env = Environment()
        q = AdmissionQueue(env, 0, capacity=100)
        monitor = StabilityMonitor(env, [q], window=1.0)
        env.process(monitor.run())

        def script():
            q.offer("a")             # depth 1 over [0, 2)
            yield env.timeout(2.0)
            q.offer("b")             # depth 2 over [2, 4)
            yield env.timeout(2.0)

        env.process(script())
        env.run(until=4.0)
        assert monitor.window_means == pytest.approx([1.0, 1.0, 2.0, 2.0])

    def test_stop_halts_the_series(self):
        env = Environment()
        q = AdmissionQueue(env, 0, capacity=10)
        monitor = StabilityMonitor(env, [q], window=1.0)
        env.process(monitor.run())
        env.run(until=2.0)
        monitor.stop()
        env.run(until=10.0)
        assert len(monitor.window_means) == 2

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            StabilityMonitor(Environment(), [], window=0.0)


class TestBisection:
    def test_finds_threshold(self):
        probes = []

        def probe(rate):
            probes.append(rate)
            return rate <= 7.3

        best, log = max_sustainable_rate(probe, 1.0, 16.0, tol=0.1)
        assert 7.3 - 0.1 <= best <= 7.3
        assert log == [(r, r <= 7.3) for r in probes]

    def test_all_stable_returns_hi(self):
        best, log = max_sustainable_rate(lambda r: True, 1.0, 8.0)
        assert best == 8.0
        assert len(log) == 2             # lo + hi, no bisection needed

    def test_all_unstable_returns_zero(self):
        best, log = max_sustainable_rate(lambda r: False, 1.0, 8.0)
        assert best == 0.0
        assert len(log) == 1             # lo failing short-circuits

    def test_rejects_bad_bracket(self):
        with pytest.raises(ValueError):
            max_sustainable_rate(lambda r: True, 8.0, 1.0)
