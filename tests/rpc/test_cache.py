"""The version-fenced lookup cache, in both of its modes."""

import pytest

from repro.rpc import LookupCache


class TestHintMode:
    """fencing=False must behave exactly like the old owner_hints dict."""

    def test_mapping_protocol(self):
        cache = LookupCache()
        cache["a"] = 3
        assert cache["a"] == 3
        assert "a" in cache and "b" not in cache
        assert cache.get("b", 7) == 7
        assert cache.setdefault("a", 9) == 3
        assert cache.setdefault("b", 9) == 9
        assert len(cache) == 2 and set(cache) == {"a", "b"}
        assert cache.pop("a") == 3
        assert cache.pop("a", None) is None
        with pytest.raises(KeyError):
            cache.pop("a")

    def test_note_version_is_inert(self):
        cache = LookupCache(fencing=False)
        cache.put("x", 1, version=1)
        cache.note_version("x", 99)
        assert cache.get("x") == 1
        assert cache.fences == 0

    def test_lookup_counts_probes(self):
        cache = LookupCache()
        assert cache.lookup("x") is None
        cache.put("x", 2)
        assert cache.lookup("x") == 2
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate() == pytest.approx(0.5)


class TestFencedMode:
    def test_stale_entry_is_fenced_out(self):
        cache = LookupCache(fencing=True)
        cache.put("x", 1, version=3)
        cache.note_version("x", 3)      # same version: still trustworthy
        assert cache.get("x") == 1
        cache.note_version("x", 4)      # registry moved past the learn point
        assert cache.get("x") is None
        assert cache.fences == 1

    def test_authoritative_observation_replaces(self):
        cache = LookupCache(fencing=True)
        cache.put("x", 1, version=3)
        cache.note_version("x", 5, owner=2)
        assert cache.get("x") == 2
        assert cache.version_of("x") == 5
        assert cache.fences == 0

    def test_unversioned_entries_are_kept(self):
        # No learn-point anchor means the entry cannot be judged stale;
        # a wrong hint heals through the not_owner chase instead.
        cache = LookupCache(fencing=True)
        cache["x"] = 1
        cache.note_version("x", 10)
        assert cache.get("x") == 1
        assert cache.fences == 0

    def test_put_without_version_drops_old_anchor(self):
        cache = LookupCache(fencing=True)
        cache.put("x", 1, version=3)
        cache.put("x", 2)               # new fact, no anchor
        assert cache.version_of("x") is None
        cache.note_version("x", 99)     # must not judge by the stale anchor
        assert cache.get("x") == 2

    def test_note_version_on_absent_oid_is_noop(self):
        cache = LookupCache(fencing=True)
        cache.note_version("ghost", 4)
        assert cache.fences == 0 and len(cache) == 0

    def test_invalidate(self):
        cache = LookupCache(fencing=True)
        cache.put("x", 1, version=2)
        cache.invalidate("x")
        assert "x" not in cache and cache.version_of("x") is None
        assert cache.fences == 1
        cache.invalidate("x")           # absent: not double-counted
        assert cache.fences == 1


class TestCapacity:
    def test_oldest_learned_evicted_first(self):
        cache = LookupCache(fencing=True, capacity=2)
        cache.put("a", 1, version=1)
        cache.put("b", 2, version=1)
        cache.put("c", 3, version=1)
        assert "a" not in cache
        assert cache.get("b") == 2 and cache.get("c") == 3
        assert cache.evictions == 1

    def test_update_does_not_evict(self):
        cache = LookupCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 5)               # refresh, not insert
        assert cache.evictions == 0 and cache.get("b") == 2

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LookupCache(capacity=0)


def test_stats_shape():
    cache = LookupCache(fencing=True)
    cache.put("x", 1, version=1)
    cache.lookup("x")
    cache.lookup("y")
    cache.note_version("x", 2)
    stats = cache.stats()
    assert stats == {
        "hits": 1, "misses": 1, "hit_rate": 0.5,
        "fences": 1, "evictions": 0, "entries": 0,
    }
