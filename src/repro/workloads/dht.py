"""Distributed Hash Table (§IV-A microbenchmark).

Buckets are the shared objects — ``buckets_per_node`` per node, each
holding an immutable tuple of (key, value) pairs.  A *put* transaction is
a parent with one or two closed-nested single-bucket updates (a multi-key
put must be atomic across buckets — the composability motivation from the
paper's introduction); a *get* transaction reads one or two buckets.

DHT transactions are the shortest of the six benchmarks (one object per
nested child, no traversal), which is why the paper sees the highest
throughput — and the smallest RTS advantage — here.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Tuple

import numpy as np

from repro.core.cluster import Cluster
from repro.workloads.base import Op, Workload, zipf_choice

__all__ = ["DhtWorkload"]

Bucket = Tuple[Tuple[str, Any], ...]


def _bucket_put(tx, bucket_oid: str, key: str, value: Any) -> Generator[Any, Any, None]:
    bucket: Bucket = yield from tx.read(bucket_oid)
    entries = tuple((k, v) for k, v in bucket if k != key) + ((key, value),)
    yield from tx.write(bucket_oid, entries)


def _bucket_remove(tx, bucket_oid: str, key: str) -> Generator[Any, Any, bool]:
    bucket: Bucket = yield from tx.read(bucket_oid)
    entries = tuple((k, v) for k, v in bucket if k != key)
    yield from tx.write(bucket_oid, entries)
    return len(entries) != len(bucket)


def put_multi(tx, puts: List[Tuple[str, str, Any]]) -> Generator[Any, Any, None]:
    """Parent: atomically apply (bucket, key, value) puts via nested txs."""
    for bucket_oid, key, value in puts:
        yield from tx.nested(_bucket_put, bucket_oid, key, value, profile="dht.put")


def remove_multi(tx, removals: List[Tuple[str, str]]) -> Generator[Any, Any, int]:
    removed = 0
    for bucket_oid, key in removals:
        hit = yield from tx.nested(_bucket_remove, bucket_oid, key, profile="dht.remove")
        removed += int(hit)
    return removed


def get_multi(tx, lookups: List[Tuple[str, str]]) -> Generator[Any, Any, List[Optional[Any]]]:
    """Read-only parent: look keys up across buckets."""
    results: List[Optional[Any]] = []
    for bucket_oid, key in lookups:
        bucket: Bucket = yield from tx.read(bucket_oid)
        results.append(next((v for k, v in bucket if k == key), None))
    return results


class DhtWorkload(Workload):
    """Hash buckets + multi-key atomic puts/gets."""

    name = "dht"

    def __init__(
        self,
        read_fraction: float = 0.9,
        buckets_per_node: int = 8,
        keys_per_bucket: int = 16,
        multi_key_prob: float = 0.5,
        skew: float = 0.0,
        payload_size: Optional[int] = None,
    ) -> None:
        super().__init__(read_fraction, payload_size=payload_size)
        if buckets_per_node < 1:
            raise ValueError("need at least 1 bucket per node")
        if skew < 0:
            raise ValueError("skew must be >= 0")
        self.buckets_per_node = buckets_per_node
        self.keys_per_bucket = keys_per_bucket
        self.multi_key_prob = float(multi_key_prob)
        #: bounded-Zipf exponent for bucket selection: 0 = uniform (the
        #: paper's setting), larger values concentrate traffic on a few
        #: hot buckets (contention hot-spot studies)
        self.skew = float(skew)
        self.buckets: List[str] = []

    def create_objects(self, cluster: Cluster, rng: np.random.Generator) -> None:
        for node in range(cluster.num_nodes):
            for i in range(self.buckets_per_node):
                oid = f"dht/bucket{node}_{i}"
                seed_entries = tuple(
                    (f"k{j}", int(rng.integers(0, 1000)))
                    for j in range(self.keys_per_bucket // 2)
                )
                cluster.alloc(oid, seed_entries, node=node)
                self.buckets.append(oid)

    # ------------------------------------------------------------------

    def _draw(self, rng: np.random.Generator, n: int) -> List[str]:
        size = min(n, len(self.buckets))
        if self.popularity is not None:
            # Open-loop runs: the traffic plane's (possibly time-varying)
            # popularity replaces the workload's static skew.
            idx = self.popularity.pick_many(
                rng, len(self.buckets), size, self.clock(), replace=False
            )
        else:
            idx = zipf_choice(
                rng, len(self.buckets), self.skew, size=size, replace=False
            )
        return [self.buckets[i] for i in idx]

    def _key(self, rng: np.random.Generator) -> str:
        return f"k{int(rng.integers(0, self.keys_per_bucket))}"

    def make_write_op(self, node: int, rng: np.random.Generator) -> Op:
        n = 2 if rng.random() < self.multi_key_prob else 1
        if rng.random() < 0.8:
            puts = [(b, self._key(rng), int(rng.integers(0, 1000))) for b in self._draw(rng, n)]
            return Op(put_multi, (puts,), "dht.put_multi", is_read=False)
        removals = [(b, self._key(rng)) for b in self._draw(rng, n)]
        return Op(remove_multi, (removals,), "dht.remove_multi", is_read=False)

    def make_read_op(self, node: int, rng: np.random.Generator) -> Op:
        n = 2 if rng.random() < self.multi_key_prob else 1
        lookups = [(b, self._key(rng)) for b in self._draw(rng, n)]
        return Op(get_multi, (lookups,), "dht.get_multi", is_read=True)
