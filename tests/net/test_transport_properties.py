"""Property-based tests for the transport (hypothesis).

The D-STM protocols assume reliable, per-link-FIFO delivery (e.g. an
object hand-off must not overtake the enqueue-reply that precedes it).
These properties pin that contract down under random traffic patterns.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import MessageType, Network, Node, Topology
from repro.sim import Environment, RngRegistry


def build(n, seed, msg_process_time=0.0):
    env = Environment()
    topo = Topology(n, RngRegistry(seed=seed).stream("topo"))
    net = Network(env, topo)
    nodes = [Node(env, net, i, msg_process_time=msg_process_time)
             for i in range(n)]
    return env, net, nodes


# (src, dst, send_delay) triples
traffic = st.lists(
    st.tuples(st.integers(0, 4), st.integers(0, 4),
              st.floats(min_value=0.0, max_value=0.2, allow_nan=False)),
    min_size=1, max_size=40,
)


class TestTransportProperties:
    @given(traffic, st.integers(0, 100))
    @settings(max_examples=50, deadline=None)
    def test_reliable_delivery(self, plan, seed):
        """Every sent message is delivered exactly once."""
        env, net, nodes = build(5, seed)
        received = []
        for node in nodes:
            node.on(MessageType.PING, lambda m: received.append(m.payload["i"]))

        def sender(env):
            for i, (src, dst, delay) in enumerate(plan):
                yield env.timeout(delay)
                nodes[src].send(dst, MessageType.PING, {"i": i})

        env.process(sender(env))
        env.run()
        assert sorted(received) == list(range(len(plan)))

    @given(traffic, st.integers(0, 100),
           st.sampled_from([0.0, 1e-4, 2e-3]))
    @settings(max_examples=50, deadline=None)
    def test_per_link_fifo(self, plan, seed, service):
        """Messages on the same (src, dst) link arrive in send order,
        with or without the node's serial message server."""
        env, net, nodes = build(5, seed, msg_process_time=service)
        received = {}
        for node in nodes:
            node.on(
                MessageType.PING,
                lambda m: received.setdefault((m.src, m.dst), []).append(
                    m.payload["i"]
                ),
            )

        def sender(env):
            for i, (src, dst, delay) in enumerate(plan):
                yield env.timeout(delay)
                nodes[src].send(dst, MessageType.PING, {"i": i})

        env.process(sender(env))
        env.run()
        sent = {}
        for i, (src, dst, _delay) in enumerate(plan):
            sent.setdefault((src, dst), []).append(i)
        assert received == sent

    @given(st.integers(2, 8), st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_delivery_time_equals_link_delay(self, n, seed):
        env, net, nodes = build(n, seed)
        arrivals = []
        nodes[1].on(MessageType.PING, lambda m: arrivals.append(env.now))
        nodes[0].send(1, MessageType.PING)
        env.run()
        assert arrivals == [net.topology.delay(0, 1)]
