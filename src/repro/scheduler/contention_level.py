"""Windowed contention-level (CL) tracking.

§III-A: the *local* CL of an object is how many transactions have
requested it during a given time period; the *remote* CL of a request is
the requester's ``myCL`` — the summed local CLs of the objects it already
holds (piggybacked in the request message).  The total CL handed to the
enqueue-or-abort test is local + remote.

:class:`ContentionTracker` implements the local part: per object, a
sliding window of distinct requesting root transactions.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Tuple

__all__ = ["ContentionTracker"]


class ContentionTracker:
    """Distinct-requesters-per-window counter, one window per object."""

    def __init__(self, window: float = 1.0) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = float(window)
        self._requests: Dict[str, Deque[Tuple[float, str]]] = {}

    def note_request(self, oid: str, txid: str, now: float) -> None:
        """Record that root transaction ``txid`` requested ``oid``."""
        dq = self._requests.get(oid)
        if dq is None:
            dq = deque()
            self._requests[oid] = dq
        dq.append((now, txid))
        self._prune(dq, now)

    def local_cl(self, oid: str, now: float) -> int:
        """Distinct root transactions that requested ``oid`` in-window."""
        dq = self._requests.get(oid)
        if not dq:
            return 0
        self._prune(dq, now)
        return len({txid for _, txid in dq})

    def _prune(self, dq: Deque[Tuple[float, str]], now: float) -> None:
        horizon = now - self.window
        while dq and dq[0][0] < horizon:
            dq.popleft()

    def forget(self, oid: str) -> None:
        self._requests.pop(oid, None)

    def tracked_objects(self) -> int:
        return len(self._requests)

    def __repr__(self) -> str:
        return f"<ContentionTracker window={self.window} objects={len(self._requests)}>"
