"""Deterministic discrete-event simulation (DES) kernel.

This package provides the execution substrate for the whole reproduction:
a single-threaded, deterministic event loop (:class:`~repro.sim.core.Environment`),
generator-coroutine processes (:class:`~repro.sim.process.Process`), one-shot
events with success/failure semantics (:mod:`repro.sim.events`), reproducible
named random streams (:mod:`repro.sim.rng`) and measurement helpers
(:mod:`repro.sim.monitor`, :mod:`repro.sim.trace`).

The design follows the classic event-list DES architecture (as popularised by
SimPy) but is implemented from scratch so that the scheduler's behaviour —
most importantly tie-breaking and therefore reproducibility — is fully under
our control: two runs with the same seeds produce byte-identical traces.
"""

from repro.sim.calendar import CalendarQueue
from repro.sim.core import Environment, ScheduleController, SimulationError
from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    EventAlreadyTriggered,
    Timeout,
    PRIORITY_URGENT,
    PRIORITY_NORMAL,
    PRIORITY_LOW,
)
from repro.sim.process import Interrupt, Process, ProcessDied
from repro.sim.rng import RngRegistry
from repro.sim.monitor import Counter, Tally, TimeWeighted
from repro.sim.trace import TraceRecord, TraceSink, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "CalendarQueue",
    "Counter",
    "Environment",
    "Event",
    "EventAlreadyTriggered",
    "Interrupt",
    "PRIORITY_LOW",
    "PRIORITY_NORMAL",
    "PRIORITY_URGENT",
    "Process",
    "ProcessDied",
    "RngRegistry",
    "ScheduleController",
    "SimulationError",
    "Tally",
    "TimeWeighted",
    "Timeout",
    "TraceRecord",
    "TraceSink",
    "Tracer",
]
