"""Deterministic fault injection and failure recovery (``repro.faults``).

The subsystem has two halves:

* **injection** — :class:`FaultPlan` turns a
  :class:`~repro.core.config.FaultConfig` plus the dedicated ``"faults"``
  RNG stream into a concrete fault timeline (crash windows, partition
  windows, per-message fates); :class:`FaultInjector` installs that plan
  onto a :class:`~repro.net.network.Network`, deciding each message's
  fate at send time and vetoing delivery to crashed nodes;
* **recovery** — :class:`RpcPolicy` (an alias of
  :class:`repro.rpc.RetryPolicy`, the stack's single retry/backoff
  policy object) parameterises the RPC substrate's timeout/retry loop;
  the lease/reclaim machinery lives in
  :class:`~repro.dstm.directory.DirectoryShard` and the heartbeat,
  commit-publish, and orphan-sweep processes in
  :class:`~repro.dstm.proxy.TMProxy`.

Everything is driven from config-seeded RNG streams: identical seeds
produce identical fault timelines and therefore bit-identical runs.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import CrashWindow, FaultPlan, MessageFate, PartitionWindow
from repro.faults.recovery import RpcPolicy

__all__ = [
    "CrashWindow",
    "FaultInjector",
    "FaultPlan",
    "MessageFate",
    "PartitionWindow",
    "RpcPolicy",
]
