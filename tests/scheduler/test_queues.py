"""Unit tests for the per-object requester queues (scheduling_List)."""

import pytest

from repro.dstm.objects import ObjectMode
from repro.dstm.transaction import ETS
from repro.scheduler.queues import Requester, RequesterList


def req(txid, mode=ObjectMode.ACQUIRE, node=0, t=0.0):
    return Requester(
        node=node, txid=txid, mode=mode,
        ets=ETS(t, t + 1.0, t + 2.0), enqueued_at=t,
    )


class TestBasicQueue:
    def test_empty(self):
        q = RequesterList()
        assert len(q) == 0
        assert q.get_contention() == 0
        assert q.pop_head() is None
        assert q.pop_next_acquirer() is None
        assert q.pop_copy_requesters() == []

    def test_add_and_contention(self):
        q = RequesterList()
        q.add_requester(2, req("t1"))
        q.add_requester(3, req("t2"))
        assert len(q) == 2
        assert q.get_contention() == 2
        assert "t1" in q and "t3" not in q

    def test_fifo_order(self):
        q = RequesterList()
        for i in range(3):
            q.add_requester(0, req(f"t{i}"))
        assert q.pop_head().txid == "t0"
        assert q.pop_head().txid == "t1"

    def test_iteration(self):
        q = RequesterList()
        q.add_requester(0, req("a"))
        q.add_requester(0, req("b"))
        assert [e.txid for e in q] == ["a", "b"]


class TestDuplicateRemoval:
    def test_remove_duplicate(self):
        q = RequesterList()
        q.add_requester(0, req("t1"))
        q.add_requester(0, req("t2"))
        assert q.remove_duplicate("t1") is True
        assert [e.txid for e in q] == ["t2"]

    def test_remove_missing_is_noop(self):
        q = RequesterList()
        q.add_requester(0, req("t1"))
        assert q.remove_duplicate("zzz") is False
        assert len(q) == 1

    def test_removes_only_first_match(self):
        q = RequesterList()
        q.add_requester(0, req("t1"))
        q.add_requester(0, req("t1"))
        q.remove_duplicate("t1")
        assert len(q) == 1


class TestModeService:
    def test_pop_copy_requesters_takes_reads_and_write_copies(self):
        q = RequesterList()
        q.add_requester(0, req("r1", ObjectMode.READ))
        q.add_requester(0, req("a1", ObjectMode.ACQUIRE))
        q.add_requester(0, req("w1", ObjectMode.WRITE))
        copies = q.pop_copy_requesters()
        assert sorted(e.txid for e in copies) == ["r1", "w1"]
        assert [e.txid for e in q] == ["a1"]

    def test_pop_next_acquirer_fifo(self):
        q = RequesterList()
        q.add_requester(0, req("r1", ObjectMode.READ))
        q.add_requester(0, req("a1", ObjectMode.ACQUIRE))
        q.add_requester(0, req("a2", ObjectMode.ACQUIRE))
        assert q.pop_next_acquirer().txid == "a1"
        assert q.pop_next_acquirer().txid == "a2"
        assert q.pop_next_acquirer() is None
        assert len(q) == 1  # the reader remains

    def test_accessors(self):
        q = RequesterList()
        q.add_requester(0, req("r1", ObjectMode.READ))
        q.add_requester(0, req("a1", ObjectMode.ACQUIRE))
        assert [e.txid for e in q.copy_requesters()] == ["r1"]
        assert [e.txid for e in q.acquirers()] == ["a1"]


class TestBacklogAndShipping:
    def test_backlog_reset(self):
        q = RequesterList()
        q.bk = 1.5
        q.reset_backlog()
        assert q.bk == 0.0

    def test_snapshot_roundtrip(self):
        q = RequesterList()
        q.add_requester(0, req("t1"))
        q.add_requester(0, req("t2"))
        q.bk = 0.7
        shipped = RequesterList.from_snapshot(q.snapshot(), bk=q.bk)
        assert [e.txid for e in shipped] == ["t1", "t2"]
        assert shipped.bk == 0.7

    def test_snapshot_is_shallow_copy(self):
        q = RequesterList()
        q.add_requester(0, req("t1"))
        snap = q.snapshot()
        q.pop_head()
        assert len(snap) == 1
