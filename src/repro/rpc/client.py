"""The typed caller side of the RPC substrate.

:class:`RpcClient` is what protocol layers hold instead of hand-rolled
``node.request`` loops: it resolves an :class:`~repro.rpc.endpoint.Endpoint`
by name, validates the request payload shape, delegates the deadline /
retry machinery to :meth:`repro.net.node.Node.request` under the bound
:class:`~repro.rpc.policy.RetryPolicy` (the stack's single retry loop),
and owns the cross-cutting concerns every call shares: ``rpc.issue`` /
``rpc.done`` / ``fault.rpc_retry`` tracing and the cluster metrics
counters.  A peer silent through every attempt surfaces as
:class:`~repro.rpc.errors.PeerUnreachable`.

The client also carries the node's :class:`~repro.rpc.cache.LookupCache`
so every layer on the node (proxy opens, TFA validation, fault-recovery
reclaim) folds ownership observations into the *same* cache.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional

from repro.net.message import Message
from repro.net.node import Node, RpcError
from repro.rpc.cache import LookupCache
from repro.rpc.endpoint import ENDPOINTS, EndpointRegistry
from repro.rpc.errors import EndpointError, PeerUnreachable
from repro.rpc.policy import RetryPolicy
from repro.sim import Tracer

__all__ = ["RpcClient"]


class RpcClient:
    """Typed RPC calls from one node, under one policy, into one cache."""

    def __init__(
        self,
        node: Node,
        policy: Optional[RetryPolicy] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[Any] = None,
        cache: Optional[LookupCache] = None,
        registry: EndpointRegistry = ENDPOINTS,
    ) -> None:
        self.node = node
        self.env = node.env
        #: None (fault-free build): calls are plain blocking waits with no
        #: timeout events — the legacy behaviour, byte-identical same-seed.
        self.policy = policy
        self.tracer = tracer or Tracer()
        self.metrics = metrics
        self.cache = cache if cache is not None else LookupCache()
        self.registry = registry
        #: host-side call counters (feed the obs report)
        self.calls = 0
        self.failures = 0

    def call(
        self,
        dst: int,
        name: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Generator[Any, Any, Message]:
        """Issue endpoint ``name`` at ``dst`` (generator; ``yield from``).

        Returns the reply :class:`~repro.net.message.Message`; raises
        :class:`PeerUnreachable` when the policy's attempts are exhausted.
        """
        endpoint = self.registry.get(name)
        if not endpoint.is_rpc:
            raise EndpointError(
                f"endpoint {name!r} is one-way; use Node.send, not call()"
            )
        endpoint.check_request(payload)
        mtype = endpoint.request
        self.calls += 1
        rpc_trace = self.tracer.wants("rpc.issue")
        if rpc_trace:
            self.tracer.emit(
                self.env.now, "rpc.issue", mtype.value,
                node=f"n{self.node.node_id}", dst=dst,
            )
        pol = self.policy
        if pol is None:
            reply = yield from self.node.request(dst, mtype, payload)
            if rpc_trace:
                self.tracer.emit(
                    self.env.now, "rpc.done", mtype.value,
                    node=f"n{self.node.node_id}", dst=dst, ok=True, retries=0,
                )
            return reply

        retries_used = 0

        def note_timeout(attempt: int, window: float, will_retry: bool) -> None:
            nonlocal retries_used
            if self.metrics is not None:
                self.metrics.rpc_timeouts.increment()
            if will_retry:
                retries_used = attempt + 1
                if self.metrics is not None:
                    self.metrics.rpc_retries.increment()
                if self.tracer.wants("fault.rpc_retry"):
                    self.tracer.emit(
                        self.env.now, "fault.rpc_retry", mtype.value,
                        dst=dst, attempt=attempt + 1, window=window,
                    )

        try:
            reply = yield from self.node.request(
                dst, mtype, payload, policy=pol, on_timeout=note_timeout
            )
        except RpcError:
            self.failures += 1
            if rpc_trace:
                self.tracer.emit(
                    self.env.now, "rpc.done", mtype.value,
                    node=f"n{self.node.node_id}", dst=dst, ok=False,
                    retries=pol.max_retries,
                )
            raise PeerUnreachable(dst, mtype.value, pol.attempts) from None
        if rpc_trace:
            self.tracer.emit(
                self.env.now, "rpc.done", mtype.value,
                node=f"n{self.node.node_id}", dst=dst, ok=True,
                retries=retries_used,
            )
        return reply

    def __repr__(self) -> str:
        return (
            f"<RpcClient n{self.node.node_id} calls={self.calls} "
            f"failures={self.failures} policy={self.policy}>"
        )
