"""Tests for open nesting (globally-committing children + compensations)."""

import pytest

from repro.core.api import Cluster
from repro.core.config import ClusterConfig, SchedulerKind
from repro.dstm.errors import TransactionAborted


def make_cluster(**kw):
    defaults = dict(num_nodes=4, seed=23, scheduler=SchedulerKind.TFA)
    defaults.update(kw)
    return Cluster(ClusterConfig(**defaults))


def bump(tx, oid, delta):
    value = yield from tx.read(oid)
    yield from tx.write(oid, value + delta)


class TestOpenCommitVisibility:
    def test_open_child_commits_before_parent(self):
        """An open-nested child's effects are globally visible while the
        parent is still running — the defining property of open nesting."""
        cluster = make_cluster()
        cluster.alloc("x", 0, node=0)
        observed = {}

        def parent(tx):
            yield from tx.open_nested(bump, "x", 10, profile="open.bump")
            # The child is committed: the shared object already changed.
            observed["mid_parent"] = cluster.committed_value("x")
            yield from tx.compute(1e-3)

        cluster.run_transaction(parent, node=1)
        assert observed["mid_parent"] == 10
        assert cluster.committed_value("x") == 10

    def test_open_child_result_returned(self):
        cluster = make_cluster()
        cluster.alloc("x", 5, node=0)

        def child(tx):
            v = yield from tx.read("x")
            return v * 2

        def parent(tx):
            doubled = yield from tx.open_nested(child)
            return doubled

        assert cluster.run_transaction(parent, node=2) == 10

    def test_open_child_does_not_join_parent_sets(self):
        cluster = make_cluster()
        cluster.alloc("x", 0, node=0)

        def parent(tx):
            yield from tx.open_nested(bump, "x", 1)
            assert "x" not in tx.transaction.wset
            assert "x" not in tx.transaction.rset

        cluster.run_transaction(parent, node=1)


class TestCompensations:
    def test_parent_abort_runs_compensation(self):
        cluster = make_cluster()
        cluster.alloc("x", 100, node=0)

        def parent(tx):
            yield from tx.open_nested(
                bump, "x", -30,
                compensation=bump, compensation_args=("x", 30),
            )
            tx.abort("change of plans")

        with pytest.raises(TransactionAborted):
            cluster.run_transaction(parent, node=1)
        # The debit committed globally, then the compensation restored it.
        assert cluster.committed_value("x") == 100

    def test_compensations_run_in_reverse_order(self):
        cluster = make_cluster()
        cluster.alloc("log", (), node=0)

        def append(tx, tag):
            log = yield from tx.read("log")
            yield from tx.write("log", log + (tag,))

        def parent(tx):
            yield from tx.open_nested(append, "A",
                                      compensation=append,
                                      compensation_args=("undo-A",))
            yield from tx.open_nested(append, "B",
                                      compensation=append,
                                      compensation_args=("undo-B",))
            tx.abort()

        with pytest.raises(TransactionAborted):
            cluster.run_transaction(parent, node=1)
        assert cluster.committed_value("log") == ("A", "B", "undo-B", "undo-A")

    def test_commit_discards_compensations(self):
        cluster = make_cluster()
        cluster.alloc("x", 0, node=0)

        def parent(tx):
            yield from tx.open_nested(
                bump, "x", 7, compensation=bump, compensation_args=("x", -7)
            )

        cluster.run_transaction(parent, node=1)
        assert cluster.committed_value("x") == 7  # no compensation ran

    def test_retry_compensates_then_reapplies(self):
        """An aborted attempt undoes its open children; the retry applies
        them again exactly once."""
        cluster = make_cluster()
        cluster.alloc("x", 0, node=0)
        attempts = []

        def parent(tx):
            attempts.append(1)
            yield from tx.open_nested(
                bump, "x", 5, compensation=bump, compensation_args=("x", -5)
            )
            if len(attempts) == 1:
                from repro.dstm.errors import AbortReason, TransactionAborted

                raise TransactionAborted(
                    tx.transaction.root, AbortReason.EARLY_VALIDATION
                )

        cluster.run_transaction(parent, node=1)
        assert len(attempts) == 2
        assert cluster.committed_value("x") == 5

    def test_open_child_without_compensation_survives_abort(self):
        cluster = make_cluster()
        cluster.alloc("x", 0, node=0)

        def parent(tx):
            yield from tx.open_nested(bump, "x", 3)  # no compensation
            tx.abort()

        with pytest.raises(TransactionAborted):
            cluster.run_transaction(parent, node=1)
        assert cluster.committed_value("x") == 3  # stays committed


class TestOpenNestingMetrics:
    def test_open_children_count_as_their_own_commits(self):
        cluster = make_cluster()
        cluster.alloc("x", 0, node=0)

        def parent(tx):
            yield from tx.open_nested(bump, "x", 1)

        cluster.run_transaction(parent, node=1)
        # Two root commits: the open child and the parent.
        assert cluster.metrics.commits.value == 2


class TestOpenChildFailure:
    def test_failed_open_child_aborts_enclosing_and_compensates(self):
        """A definitively failed open child aborts the enclosing
        transaction, whose earlier compensations then run."""
        cluster = make_cluster()
        cluster.alloc("x", 0, node=0)
        cluster.alloc("broken", 0, node=2)

        def failing(tx):
            tx.abort("deliberate failure")
            yield  # pragma: no cover

        def parent(tx):
            yield from tx.open_nested(
                bump, "x", 4, compensation=bump, compensation_args=("x", -4)
            )
            yield from tx.open_nested(failing)

        with pytest.raises(TransactionAborted) as excinfo:
            cluster.run_transaction(parent, node=1)
        assert "open-nested child failed" in str(excinfo.value)
        assert cluster.committed_value("x") == 0  # compensated
