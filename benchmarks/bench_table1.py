"""Table I — abort rate of nested transactions (RTS vs TFA).

Regenerates the paper's Table I at bench scale and checks the shape
property the table demonstrates: RTS lowers both the number of parent
aborts and the share of nested aborts caused by them, relative to TFA.

Full regeneration: ``python -m repro.analysis.reproduce table1 --scale full``.
"""

import pytest

from benchmarks.conftest import run_cell
from repro.analysis.scales import BENCHMARKS


def _table1_cell(workload, scheduler, read_fraction):
    return run_cell(workload, scheduler, read_fraction)


@pytest.mark.parametrize("workload", BENCHMARKS)
@pytest.mark.parametrize("contention,read_fraction", [("low", 0.9), ("high", 0.1)])
def test_rts_reduces_parent_aborts(workload, contention, read_fraction, bench_cache):
    """Shape property of Table I: fewer parent-caused nested aborts
    under RTS than under plain TFA."""
    rts = bench_cache((workload, "rts", contention),
                      lambda: _table1_cell(workload, "rts", read_fraction))
    tfa = bench_cache((workload, "tfa", contention),
                      lambda: _table1_cell(workload, "tfa", read_fraction))
    assert rts.commits > 0 and tfa.commits > 0
    if tfa.nested_aborts_parent < 30:
        pytest.skip("cell too quiet at bench scale to compare abort pressure")
    # RTS must not *increase* parent-abort pressure; bench-scale cells
    # carry sampling noise, hence the slack.
    assert rts.nested_aborts_parent <= tfa.nested_aborts_parent * 1.25, (
        f"{workload}@{contention}: RTS parent-caused nested aborts "
        f"{rts.nested_aborts_parent} vs TFA {tfa.nested_aborts_parent}"
    )


def test_benchmark_table1_cell(benchmark):
    """pytest-benchmark: wall-clock cost of one Table I cell (bank/RTS/high)."""
    result = benchmark.pedantic(
        lambda: _table1_cell("bank", "rts", 0.1), rounds=1, iterations=1,
    )
    assert result.commits > 0
