"""Unit tests for generator-coroutine processes."""

import pytest

from repro.sim import Environment, Interrupt, Process, ProcessDied


class TestBasicExecution:
    def test_process_runs_to_completion(self, env):
        def body(env):
            yield env.timeout(1)
            yield env.timeout(2)
            return "done"

        p = env.process(body(env))
        env.run()
        assert p.value == "done"
        assert env.now == 3.0

    def test_process_is_alive_until_return(self, env):
        def body(env):
            yield env.timeout(5)

        p = env.process(body(env))
        assert p.is_alive
        env.run(until=1)
        assert p.is_alive
        env.run()
        assert not p.is_alive

    def test_default_return_value_is_none(self, env):
        def body(env):
            yield env.timeout(1)

        p = env.process(body(env))
        env.run()
        assert p.value is None

    def test_non_generator_rejected(self, env):
        with pytest.raises(TypeError):
            env.process(lambda: None)

    def test_name_defaults_to_generator_name(self, env):
        def my_worker(env):
            yield env.timeout(1)

        p = env.process(my_worker(env))
        assert p.name == "my_worker"
        q = env.process(my_worker(env), name="custom")
        assert q.name == "custom"
        env.run()

    def test_yielding_non_event_fails_process(self, env):
        def body(env):
            yield 42

        # An orphan failure crashes the run loudly...
        env.process(body(env))
        with pytest.raises(RuntimeError, match="must\\s+yield Event"):
            env.run(until=1)

        # ...while a waiter can observe and absorb it.
        def waiter(env):
            with pytest.raises(RuntimeError, match="must\\s+yield Event"):
                yield env.process(body(env))
            return True

        w = env.process(waiter(env))
        env.run()
        assert w.value is True

    def test_yielding_foreign_event_fails_process(self, env):
        other = Environment()

        def body(env):
            yield other.event()

        def waiter(env):
            with pytest.raises(RuntimeError, match="different environment"):
                yield env.process(body(env))
            return True

        w = env.process(waiter(env))
        env.run()
        assert w.value is True


class TestProcessAsEvent:
    def test_waiting_on_child_process(self, env):
        def child(env):
            yield env.timeout(2)
            return 99

        def parent(env):
            v = yield env.process(child(env))
            return v + 1

        p = env.process(parent(env))
        env.run()
        assert p.value == 100

    def test_child_exception_propagates_to_waiter(self, env):
        def child(env):
            yield env.timeout(1)
            raise KeyError("lost")

        def parent(env):
            try:
                yield env.process(child(env))
            except KeyError:
                return "caught"

        p = env.process(parent(env))
        env.run()
        assert p.value == "caught"

    def test_uncaught_process_failure_crashes_run(self, env):
        def body(env):
            yield env.timeout(1)
            raise RuntimeError("unhandled")

        env.process(body(env))
        with pytest.raises(RuntimeError, match="unhandled"):
            env.run()

    def test_waiting_on_already_finished_process(self, env):
        def child(env):
            yield env.timeout(1)
            return "early"

        def parent(env, c):
            yield env.timeout(5)
            v = yield c
            return v

        c = env.process(child(env))
        p = env.process(parent(env, c))
        env.run()
        assert p.value == "early"
        assert env.now == 5.0


class TestInterrupts:
    def test_interrupt_wakes_sleeper(self, env):
        def sleeper(env):
            try:
                yield env.timeout(100)
                return "slept"
            except Interrupt as i:
                return ("interrupted", env.now, i.cause)

        s = env.process(sleeper(env))

        def killer(env):
            yield env.timeout(3)
            s.interrupt("reason")

        env.process(killer(env))
        env.run(until=s)
        assert s.value == ("interrupted", 3.0, "reason")

    def test_interrupt_cause_defaults_to_none(self, env):
        def sleeper(env):
            try:
                yield env.timeout(10)
            except Interrupt as i:
                return i.cause

        s = env.process(sleeper(env))

        def killer(env):
            yield env.timeout(1)
            s.interrupt()

        env.process(killer(env))
        env.run(until=s)
        assert s.value is None

    def test_interrupted_process_can_keep_running(self, env):
        log = []

        def worker(env):
            try:
                yield env.timeout(50)
            except Interrupt:
                log.append(("intr", env.now))
            yield env.timeout(2)
            log.append(("done", env.now))

        w = env.process(worker(env))

        def killer(env):
            yield env.timeout(1)
            w.interrupt()

        env.process(killer(env))
        env.run()
        assert log == [("intr", 1.0), ("done", 3.0)]

    def test_interrupt_dead_process_raises(self, env):
        def body(env):
            yield env.timeout(1)

        p = env.process(body(env))
        env.run()
        with pytest.raises(ProcessDied):
            p.interrupt()

    def test_interrupt_does_not_consume_waited_event(self, env):
        """The event the process waited on stays usable by other waiters."""
        shared = env.event()
        got = []

        def patient(env):
            v = yield shared
            got.append(("patient", v))

        def impatient(env):
            try:
                yield shared
            except Interrupt:
                got.append(("impatient", "interrupted"))

        env.process(patient(env))
        imp = env.process(impatient(env))

        def driver(env):
            yield env.timeout(1)
            imp.interrupt()
            yield env.timeout(1)
            shared.succeed("payload")

        env.process(driver(env))
        env.run()
        assert ("patient", "payload") in got
        assert ("impatient", "interrupted") in got

    def test_unhandled_interrupt_fails_process(self, env):
        def body(env):
            yield env.timeout(10)

        p = env.process(body(env))

        def killer(env):
            yield env.timeout(1)
            p.interrupt("die")

        env.process(killer(env))
        with pytest.raises(Interrupt):
            env.run()

    def test_interrupt_delivered_before_same_time_resume(self, env):
        """An interrupt at time t wins over an event resume at time t."""

        def sleeper(env):
            try:
                yield env.timeout(5)
                return "timeout-won"
            except Interrupt:
                return "interrupt-won"

        s = env.process(sleeper(env))

        def killer(env):
            yield env.timeout(5)
            s.interrupt()

        # killer's timeout was scheduled after sleeper's; processed second
        # at t=5, yet the interrupt is delivered urgently.
        env.process(killer(env))
        env.run(until=s)
        # Sleeper's timeout processes first at t=5 (it was scheduled first),
        # so it resumes normally before the killer even runs.
        assert s.value == "timeout-won"

    def test_interrupt_before_wakeup_event_processes(self, env):
        def sleeper(env):
            try:
                yield env.timeout(5)
                return "timeout-won"
            except Interrupt:
                return "interrupt-won"

        s = env.process(sleeper(env))

        def killer(env):
            yield env.timeout(4)
            s.interrupt()

        env.process(killer(env))
        env.run(until=s)
        assert s.value == "interrupt-won"
