"""Design-choice ablations (beyond the paper's own figures).

* **A1 — CL threshold sweep**: §IV-A notes a throughput peak at some CL
  threshold, chosen per deployment; we sweep fixed thresholds and the
  adaptive controller.
* **A2 — backoff policy**: expected-time queue backoffs (RTS) vs
  randomised exponential (TFA+Backoff) vs none (TFA), at fixed workload.
* **A3 — network delay band**: the paper's static 1-50 ms links vs
  uniform-fast (1 ms) and uniform-slow (50 ms) networks.
* **A4 — nesting model**: closed vs flat vs open nesting (§I's three
  models; the open rows use Bank's compensating-transfer variant).
* **A5 — conflict scope**: who a lost conflict kills (root / level /
  mixed — see ``ClusterConfig.conflict_scope``).
* **A6 — contention manager**: holder-wins (paper) vs greedy-timestamp.
* **A7 — abort overhead**: framework rollback-cost sensitivity.
* **A8 — RTS admission**: Algorithm 3 literal vs economic calibration.
* **A9 — CC locator**: Arrow tree protocol vs home directory under
  synthetic migration churn.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.analysis.render import render_table
from repro.analysis.scales import SCALES, Scale
from repro.core.config import ClusterConfig, SchedulerKind
from repro.core.experiment import ExperimentResult
from repro.dstm.contention import WinnerPolicy
from repro.dstm.transaction import NestingModel
from repro.net.topology import MS
from repro.par import CellSpec, run_cells

__all__ = [
    "run_threshold_sweep",
    "run_backoff_ablation",
    "run_network_ablation",
    "run_nesting_ablation",
    "run_conflict_scope_ablation",
    "run_contention_manager_ablation",
    "ALL_ABLATIONS",
]


def _spec(
    bench: str,
    cfg: ClusterConfig,
    read_fraction: float,
    preset: Scale,
    workload_kwargs: Dict[str, Any] | None = None,
) -> CellSpec:
    return CellSpec(
        bench, cfg, read_fraction=read_fraction,
        workers_per_node=preset.workers_per_node, horizon=preset.horizon,
        workload_kwargs=workload_kwargs,
    )


def _run_grid(
    specs: List[CellSpec], jobs: int = 1, cache_dir: str | None = None
) -> List[ExperimentResult]:
    """Run an ablation's cells through repro.par, results in spec order.

    Every runner below funnels its grid through here, so ``--jobs`` and
    ``--cache-dir`` apply uniformly and rows come back in the same order
    the serial loops produced them (deterministic merge).
    """
    run = run_cells(specs, jobs=jobs, cache_dir=cache_dir)
    return [outcome.result for outcome in run.in_spec_order()]


def run_threshold_sweep(
    scale: str | Scale = "quick",
    seed: int = 1,
    bench: str = "bank",
    thresholds: List[Any] = (1, 2, 3, 4, 6, 8, 12, "adaptive"),
    jobs: int = 1,
    cache_dir: str | None = None,
) -> List[Dict[str, Any]]:
    """A1: RTS throughput/aborts across CL thresholds, high contention."""
    preset = SCALES[scale] if isinstance(scale, str) else scale
    nodes = preset.table_nodes
    specs = [
        _spec(bench, ClusterConfig(
            num_nodes=nodes, seed=seed, scheduler=SchedulerKind.RTS,
            cl_threshold=None if threshold == "adaptive" else int(threshold),
        ), 0.1, preset)
        for threshold in thresholds
    ]
    rows = []
    for threshold, res in zip(thresholds, _run_grid(specs, jobs, cache_dir)):
        rows.append({
            "threshold": threshold,
            "throughput": res.throughput,
            "aborts": res.root_aborts,
            "nested_abort_rate": round(res.nested_abort_rate, 3),
        })
    return rows


def run_backoff_ablation(
    scale: str | Scale = "quick", seed: int = 1, bench: str = "bank",
    jobs: int = 1, cache_dir: str | None = None,
) -> List[Dict[str, Any]]:
    """A2: the three schedulers' policies head-to-head, both contentions."""
    preset = SCALES[scale] if isinstance(scale, str) else scale
    grid = [(contention, rf, sched)
            for contention, rf in (("low", 0.9), ("high", 0.1))
            for sched in SchedulerKind]
    specs = [
        _spec(bench, ClusterConfig(num_nodes=preset.table_nodes, seed=seed,
                                   scheduler=sched, cl_threshold=4), rf, preset)
        for _contention, rf, sched in grid
    ]
    rows = []
    for (contention, _rf, sched), res in zip(grid, _run_grid(specs, jobs, cache_dir)):
        rows.append({
            "contention": contention,
            "policy": sched.value,
            "throughput": res.throughput,
            "aborts": res.root_aborts,
            "messages": res.messages_sent,
        })
    return rows


def run_network_ablation(
    scale: str | Scale = "quick", seed: int = 1, bench: str = "ll",
    jobs: int = 1, cache_dir: str | None = None,
) -> List[Dict[str, Any]]:
    """A3: sensitivity to the link-delay band."""
    preset = SCALES[scale] if isinstance(scale, str) else scale
    bands = {
        "paper 1-50ms": (1 * MS, 50 * MS),
        "uniform 1ms": (1 * MS, 1 * MS + 1e-9),
        "uniform 50ms": (50 * MS, 50 * MS + 1e-9),
        "wan 10-200ms": (10 * MS, 200 * MS),
    }
    grid = [(name, lo, hi, sched)
            for name, (lo, hi) in bands.items()
            for sched in (SchedulerKind.RTS, SchedulerKind.TFA)]
    specs = [
        _spec(bench, ClusterConfig(
            num_nodes=preset.table_nodes, seed=seed, scheduler=sched,
            cl_threshold=4, min_link_delay=lo, max_link_delay=hi,
        ), 0.1, preset)
        for _name, lo, hi, sched in grid
    ]
    rows = []
    for (name, _lo, _hi, sched), res in zip(grid, _run_grid(specs, jobs, cache_dir)):
        rows.append({
            "band": name,
            "scheduler": sched.value,
            "throughput": res.throughput,
            "aborts": res.root_aborts,
        })
    return rows


def run_nesting_ablation(
    scale: str | Scale = "quick", seed: int = 1, bench: str = "bank",
    jobs: int = 1, cache_dir: str | None = None,
) -> List[Dict[str, Any]]:
    """A4: closed vs flat vs open nesting under RTS and TFA.

    The open rows run the Bank workload's open-nested transfer variant
    (legs commit globally, compensated by reverse transfers on parent
    abort) — the third nesting model §I describes.
    """
    preset = SCALES[scale] if isinstance(scale, str) else scale
    configs = [
        ("closed", NestingModel.CLOSED, {}),
        ("flat", NestingModel.FLAT, {}),
        ("open", NestingModel.CLOSED, {"open_nesting": True}),
    ]
    grid = [(label, nesting, wl_kwargs, sched)
            for label, nesting, wl_kwargs in configs
            for sched in (SchedulerKind.RTS, SchedulerKind.TFA)]
    specs = [
        _spec(bench, ClusterConfig(num_nodes=preset.table_nodes, seed=seed,
                                   scheduler=sched, cl_threshold=4,
                                   nesting=nesting),
              0.1, preset, workload_kwargs=wl_kwargs or None)
        for _label, nesting, wl_kwargs, sched in grid
    ]
    rows = []
    for (label, _nesting, _wl, sched), res in zip(
        grid, _run_grid(specs, jobs, cache_dir)
    ):
        rows.append({
            "nesting": label,
            "scheduler": sched.value,
            "throughput": res.throughput,
            "aborts": res.root_aborts,
            "nested_abort_rate": round(res.nested_abort_rate, 3),
        })
    return rows


def run_conflict_scope_ablation(
    scale: str | Scale = "quick", seed: int = 1, bench: str = "bank",
    jobs: int = 1, cache_dir: str | None = None,
) -> List[Dict[str, Any]]:
    """A5: busy-conflict victim semantics."""
    preset = SCALES[scale] if isinstance(scale, str) else scale
    grid = [(scope, sched)
            for scope in ("root", "mixed", "level")
            for sched in (SchedulerKind.RTS, SchedulerKind.TFA)]
    specs = [
        _spec(bench, ClusterConfig(num_nodes=preset.table_nodes, seed=seed,
                                   scheduler=sched, cl_threshold=4,
                                   conflict_scope=scope), 0.1, preset)
        for scope, sched in grid
    ]
    rows = []
    for (scope, sched), res in zip(grid, _run_grid(specs, jobs, cache_dir)):
        rows.append({
            "scope": scope,
            "scheduler": sched.value,
            "throughput": res.throughput,
            "aborts": res.root_aborts,
            "nested_abort_rate": round(res.nested_abort_rate, 3),
        })
    return rows


def run_contention_manager_ablation(
    scale: str | Scale = "quick", seed: int = 1, bench: str = "bank",
    jobs: int = 1, cache_dir: str | None = None,
) -> List[Dict[str, Any]]:
    """A6: holder-wins (paper) vs greedy-timestamp dooming."""
    preset = SCALES[scale] if isinstance(scale, str) else scale
    grid = [(policy, sched)
            for policy in (WinnerPolicy.HOLDER_WINS, WinnerPolicy.GREEDY_TIMESTAMP)
            for sched in (SchedulerKind.RTS, SchedulerKind.TFA)]
    specs = [
        _spec(bench, ClusterConfig(num_nodes=preset.table_nodes, seed=seed,
                                   scheduler=sched, cl_threshold=4,
                                   winner_policy=policy), 0.1, preset)
        for policy, sched in grid
    ]
    rows = []
    for (policy, sched), res in zip(grid, _run_grid(specs, jobs, cache_dir)):
        rows.append({
            "winner_policy": policy.value,
            "scheduler": sched.value,
            "throughput": res.throughput,
            "aborts": res.root_aborts,
        })
    return rows


def run_admission_ablation(
    scale: str | Scale = "quick", seed: int = 1, bench: str = "bank",
    jobs: int = 1, cache_dir: str | None = None,
) -> List[Dict[str, Any]]:
    """A8: RTS execution-time admission rule (paper-literal vs economic)."""
    preset = SCALES[scale] if isinstance(scale, str) else scale
    grid = [(admission, rf, contention)
            for admission in ("paper", "economic")
            for rf, contention in ((0.9, "low"), (0.1, "high"))]
    specs = [
        _spec(bench, ClusterConfig(num_nodes=preset.table_nodes, seed=seed,
                                   scheduler=SchedulerKind.RTS, cl_threshold=4,
                                   rts_admission=admission), rf, preset)
        for admission, rf, _contention in grid
    ]
    rows = []
    for (admission, _rf, contention), res in zip(
        grid, _run_grid(specs, jobs, cache_dir)
    ):
        rows.append({
            "admission": admission,
            "contention": contention,
            "throughput": res.throughput,
            "aborts": res.root_aborts,
            "messages_per_commit": round(
                res.messages_sent / max(res.commits, 1), 1
            ),
        })
    return rows


def run_abort_cost_ablation(
    scale: str | Scale = "quick", seed: int = 1, bench: str = "bank",
    jobs: int = 1, cache_dir: str | None = None,
) -> List[Dict[str, Any]]:
    """A7: framework abort-overhead sensitivity."""
    preset = SCALES[scale] if isinstance(scale, str) else scale
    grid = [(overhead, sched)
            for overhead in (0.0, 0.01, 0.05)
            for sched in (SchedulerKind.RTS, SchedulerKind.TFA)]
    specs = [
        _spec(bench, ClusterConfig(num_nodes=preset.table_nodes, seed=seed,
                                   scheduler=sched, cl_threshold=4,
                                   abort_overhead=overhead), 0.1, preset)
        for overhead, sched in grid
    ]
    rows = []
    for (overhead, sched), res in zip(grid, _run_grid(specs, jobs, cache_dir)):
        rows.append({
            "abort_overhead_ms": overhead * 1e3,
            "scheduler": sched.value,
            "throughput": res.throughput,
            "aborts": res.root_aborts,
        })
    return rows


def run_locator_ablation(
    scale: str | Scale = "quick",
    seed: int = 1,
    num_objects: int = 12,
    migrations_per_object: int = 12,
    jobs: int = 1,
    cache_dir: str | None = None,
) -> List[Dict[str, Any]]:
    """A9: object-location strategies — home directory vs Arrow.

    Runs serially regardless of ``jobs``/``cache_dir`` (accepted for
    CLI uniformity): this ablation drives raw directory protocols, not
    experiment cells, so it has no cell key to cache under.

    Synthetic churn: objects migrate between uniformly random nodes.  The
    home-directory locator pays lookup+request round trips against a
    fixed home; Arrow pays tree-path finds with path reversal (requests
    from near the previous holder stay cheap).  Reported: mean
    location-to-grant latency and messages per migration.
    """
    from repro.dstm.arrow import ArrowDirectory, build_spanning_tree
    from repro.net.network import Network
    from repro.net.node import Node
    from repro.net.topology import Topology
    from repro.sim import Environment, RngRegistry

    preset = SCALES[scale] if isinstance(scale, str) else scale
    n = preset.table_nodes
    rows: List[Dict[str, Any]] = []

    # --- Arrow ---
    env = Environment()
    rngs = RngRegistry(seed=seed)
    topo = Topology(n, rngs.stream("topology"))
    net = Network(env, topo)
    nodes = [Node(env, net, i) for i in range(n)]
    tree = build_spanning_tree(topo)
    dirs = [ArrowDirectory(node, tree) for node in nodes]
    rng = rngs.stream("churn")
    latencies: List[float] = []

    def churn(env, oid, sequence):
        holder = sequence[0]
        dirs[holder].create(oid, dirs)
        for target in sequence[1:]:
            if target == holder:
                continue
            started = env.now
            proc = env.process(dirs[target].find(oid), name="find")
            yield env.timeout(2e-3)
            dirs[holder].release(oid)
            yield proc
            latencies.append(env.now - started)
            holder = target

    for i in range(num_objects):
        seq = [int(x) for x in rng.integers(0, n, size=migrations_per_object + 1)]
        env.process(churn(env, f"ablate{i}", seq))
    env.run()
    rows.append({
        "locator": "arrow",
        "mean_latency_ms": round(1e3 * sum(latencies) / max(len(latencies), 1), 2),
        "messages": net.messages_sent.value,
        "migrations": len(latencies),
    })

    # --- home directory (measured through the production D-STM stack) ---
    from repro.core.cluster import Cluster
    from repro.core.config import ClusterConfig, SchedulerKind
    from repro.dstm.objects import ObjectMode

    cluster = Cluster(ClusterConfig(num_nodes=n, seed=seed,
                                    scheduler=SchedulerKind.TFA))
    rng = cluster.rngs.stream("churn")
    latencies2: List[float] = []

    def churn2(env, oid, sequence):
        cluster.alloc(oid, 0, node=sequence[0])
        for target in sequence[1:]:
            engine = cluster.engines[target]
            root = engine.begin()
            started = env.now
            yield from cluster.proxies[target].open_object(
                root, oid, ObjectMode.ACQUIRE
            )
            latencies2.append(env.now - started)
            cluster.proxies[target].release_object(oid, committed=False)

    for i in range(num_objects):
        seq = [int(x) for x in rng.integers(0, n, size=migrations_per_object + 1)]
        cluster.env.process(churn2(cluster.env, f"ablate{i}", seq))
    cluster.env.run()
    rows.append({
        "locator": "home-directory",
        "mean_latency_ms": round(1e3 * sum(latencies2) / max(len(latencies2), 1), 2),
        "messages": cluster.network.messages_sent.value,
        "migrations": len(latencies2),
    })
    return rows


ALL_ABLATIONS = {
    "threshold": (run_threshold_sweep, "A1 — CL threshold sweep (bank, high contention)"),
    "backoff": (run_backoff_ablation, "A2 — scheduling policy head-to-head (bank)"),
    "network": (run_network_ablation, "A3 — link-delay band sensitivity (linked list)"),
    "nesting": (run_nesting_ablation, "A4 — closed vs flat vs open nesting (bank)"),
    "conflict-scope": (run_conflict_scope_ablation, "A5 — conflict victim scope (bank)"),
    "contention-manager": (run_contention_manager_ablation, "A6 — contention manager (bank)"),
    "abort-cost": (run_abort_cost_ablation, "A7 — framework abort-overhead sensitivity (bank, high contention)"),
    "admission": (run_admission_ablation, "A8 — RTS admission rule: paper-literal vs economic (bank)"),
    "locator": (run_locator_ablation, "A9 — CC locator: Arrow vs home directory (synthetic churn)"),
}


def format_ablation(name: str, rows: List[Dict[str, Any]]) -> str:
    _fn, title = ALL_ABLATIONS[name]
    return render_table(rows, title=title)
