"""The stability detector: is the offered load sustainable?

Busch et al.'s stable-scheduling framework (arXiv:2208.07359) gives the
pass/fail criterion for open-loop load: a schedule is *stable* when
queue depth stays bounded under the (adversarially constrained) arrival
process.  The detector reduces a run to that verdict:

* the :class:`StabilityMonitor` integrates every admission queue's
  time-weighted depth into fixed windows (the *windowed* view is what
  separates "transient burst that drained" from "backlog that keeps
  growing");
* :func:`stability_verdict` is the pure divergence test over those
  window means — the tail of the run must not be growing away from its
  head, and admission control must not be shedding a material fraction
  of the offered load (a queue kept "bounded" by dropping work is not a
  stable server, it is a saturated one);
* :func:`max_sustainable_rate` bisects an offered-rate axis against any
  ``probe(rate) -> stable`` predicate — the driver ``bench_serving.py``
  uses to locate each scheduler's saturation point.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Sequence, Tuple

from repro.sim import Environment

__all__ = ["StabilityMonitor", "max_sustainable_rate", "stability_verdict"]


def stability_verdict(
    window_means: Sequence[float],
    shed_rate: float = 0.0,
    *,
    min_windows: int = 4,
    abs_floor: float = 2.0,
    growth_limit: float = 2.0,
    shed_tolerance: float = 0.05,
) -> Dict[str, Any]:
    """Reduce windowed queue-depth means to a ``stable: bool`` verdict.

    The run is *unstable* when (a) more than ``shed_tolerance`` of the
    offered load was shed, or (b) the mean depth over the run's second
    half exceeds both ``abs_floor`` (an always-acceptable bound: a
    couple of queued transactions is a working pipeline, not a backlog)
    and ``growth_limit ×`` the first half's mean (depth kept growing
    instead of plateauing).  Runs shorter than ``min_windows`` windows
    fall back to the absolute bound alone.
    """
    means = [float(m) for m in window_means]
    if shed_rate > shed_tolerance:
        return {
            "stable": False, "reason": "shedding",
            "head_depth": _mean(means[: max(1, len(means) // 2)]),
            "tail_depth": _mean(means[len(means) // 2:]) if means else 0.0,
            "shed_rate": float(shed_rate),
        }
    if len(means) < min_windows:
        peak = max(means) if means else 0.0
        stable = peak <= abs_floor
        return {
            "stable": stable,
            "reason": "short-run-bounded" if stable else "short-run-deep",
            "head_depth": _mean(means), "tail_depth": peak,
            "shed_rate": float(shed_rate),
        }
    half = len(means) // 2
    head = _mean(means[:half])
    tail = _mean(means[half:])
    bounded = tail <= abs_floor or tail <= growth_limit * head
    return {
        "stable": bounded,
        "reason": "bounded" if bounded else "divergent",
        "head_depth": head, "tail_depth": tail,
        "shed_rate": float(shed_rate),
    }


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


class StabilityMonitor:
    """Windowed, time-weighted cluster queue-depth series.

    Runs as a simulation process: every ``window`` simulated seconds it
    appends the time-weighted mean depth (summed over all admission
    queues) of the window just ended.  Reading the cumulative integral
    from each queue's gauge — rather than point-sampling ``len(queue)``
    — means a burst that arrived and drained *within* a window still
    shows up in its mean.
    """

    def __init__(self, env: Environment, queues: Sequence[Any], window: float) -> None:
        if window <= 0:
            raise ValueError(f"window must be > 0, got {window}")
        self.env = env
        self.queues = list(queues)
        self.window = float(window)
        self.window_means: List[float] = []
        self._stopped = False

    def _cumulative_area(self, now: float) -> float:
        # TimeWeighted.average is area/span with span anchored at the
        # queue's construction time; the queues are built at run start,
        # the same instant this process starts, so the anchors agree.
        total = 0.0
        for q in self.queues:
            span = now - q.depth._start
            if span > 0:
                total += q.depth.average(now) * span
        return total

    def run(self) -> Generator[Any, Any, None]:
        env = self.env
        prev_area = self._cumulative_area(env.now)
        while True:
            yield env.timeout(self.window)
            if self._stopped:
                return
            area = self._cumulative_area(env.now)
            self.window_means.append((area - prev_area) / self.window)
            prev_area = area

    def stop(self) -> None:
        self._stopped = True


def max_sustainable_rate(
    probe: Callable[[float], bool],
    lo: float,
    hi: float,
    *,
    tol: float | None = None,
    max_iters: int = 16,
) -> Tuple[float, List[Tuple[float, bool]]]:
    """Bisect for the highest stable offered rate in ``[lo, hi]``.

    ``probe(rate)`` runs one cell at that rate and returns its stability
    verdict; stability is assumed monotone in the rate (true for every
    workload here: more offered load never helps).  Returns the best
    known-stable rate (0.0 when even ``lo`` is unstable) plus the probe
    log ``[(rate, stable), ...]`` in evaluation order.
    """
    if not 0 < lo < hi:
        raise ValueError(f"need 0 < lo < hi, got lo={lo} hi={hi}")
    probes: List[Tuple[float, bool]] = []
    lo_ok = bool(probe(lo))
    probes.append((lo, lo_ok))
    if not lo_ok:
        return 0.0, probes
    hi_ok = bool(probe(hi))
    probes.append((hi, hi_ok))
    if hi_ok:
        return hi, probes
    if tol is None:
        tol = (hi - lo) / 16.0
    best = lo
    for _ in range(max_iters):
        if hi - lo <= tol:
            break
        mid = (lo + hi) / 2.0
        ok = bool(probe(mid))
        probes.append((mid, ok))
        if ok:
            best = lo = mid
        else:
            hi = mid
    return best, probes
