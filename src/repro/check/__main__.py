"""``python -m repro.check`` — point at the check CLIs."""

import sys

USAGE = """\
repro.check has three command-line entry points:

  python -m repro.check.lint [paths...]     determinism linter
  python -m repro.check.races RUN.JSONL     trace-replay race detector
  python -m repro.check.explore [--nodes N --txns K --scheduler rts|tfa]
                                            bounded interleaving explorer

Rule reference: DESIGN.md §3e, or `python -m repro.check --rules`.
"""


def main() -> int:
    if "--rules" in sys.argv[1:]:
        from repro.check.rules import RULES

        for rule_id in sorted(RULES):
            print(f"{rule_id:36} {RULES[rule_id].summary}")
        return 0
    print(USAGE, end="")
    return 0


if __name__ == "__main__":
    sys.exit(main())
