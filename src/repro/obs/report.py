"""Run-report CLI over an exported observability log.

Usage::

    python -m repro.obs.report run.jsonl
    python -m repro.obs.report run.jsonl --validate --top 5
    python -m repro.obs.report run.jsonl --chrome run.trace.json
    python -m repro.obs.report run.jsonl --json

Reads the JSONL event log one line at a time (O(1) memory for the
series; span phases are collected as raw samples for *exact*
percentiles, which is fine offline) and prints:

* a run overview (event count, simulated time range);
* the per-node table — commits, aborts, abort ratio, throughput, RPC
  traffic, mean RPC in-flight, lookup-cache hit rate, and the
  unreachability EWMA;
* the top contended objects — conflicts, ownership migrations, mean and
  max queue depth;
* the RPC piggyback-batching summary (flushes, coalesced messages, mean
  and max batch size) when batching was on;
* span-phase latency percentiles (p50/p95/p99, exact);
* the critical-path latency anatomy — every committed root's sojourn
  decomposed into exact blame segments (:mod:`repro.prof.anatomy`);
* the wasted-work table — aborted-attempt sim-time by cause and node
  (:mod:`repro.prof.wasted`);
* the scheduler-decision histogram (action x cause);
* the fault timeline (first events, with a truncation note; the cutoff
  is ``--max-fault-lines``).

``--chrome OUT`` additionally re-exports the log as a Chrome
``trace_event`` file (Perfetto-loadable) — the offline twin of the
cluster's live ``chrome_path`` exporter.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, Iterable, Iterator, List, Optional

from repro.obs.chrome import ChromeTraceWriter
from repro.obs.events import SchemaError, validate_event
from repro.obs.series import SeriesTracker
from repro.obs.spans import SpanBuilder, phase_durations
from repro.sim.monitor import Tally

__all__ = ["load_events", "main", "render", "summarize"]


def load_events(path: str) -> Iterator[Dict[str, Any]]:
    """Stream events from a JSONL file, skipping blank lines."""
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as exc:
                raise SchemaError(f"{path}:{lineno}: invalid JSON: {exc}") from exc


def summarize(
    events: Iterable[Dict[str, Any]],
    window: float = 0.25,
    top: int = 10,
    validate: bool = False,
    chrome: Optional[ChromeTraceWriter] = None,
) -> Dict[str, Any]:
    """Reduce an event stream to the report's summary dict."""
    series = SeriesTracker(window=window)
    spans = SpanBuilder()
    outcome_tallies = {
        "commit": Tally("span.commit", keep_samples=True),
        "abort": Tally("span.abort", keep_samples=True),
    }
    dispatch: Dict[str, float] = {}
    for event in events:
        if validate:
            validate_event(event)
        series.feed(event)
        spans.feed(event)
        if event.get("cat") == "traffic.dispatch":
            # task id -> admission-queue arrival, for latency anatomy
            dispatch[event["sub"]] = float(event["arrived"])
        if chrome is not None:
            chrome.feed(event)

    completed = spans.finish()
    for span in completed:
        if span.duration is not None and span.outcome in outcome_tallies:
            outcome_tallies[span.outcome].observe(span.duration)

    phases: Dict[str, Dict[str, float]] = {}
    for name, durations in sorted(phase_durations(completed).items()):
        tally = Tally(name, keep_samples=True)
        for d in durations:
            tally.observe(d)
        phases[name] = _percentile_row(tally)
    for outcome, tally in sorted(outcome_tallies.items()):
        if tally.count:
            phases[f"span.{outcome}"] = _percentile_row(tally)

    summary = {
        "window": window,
        "events": series.events,
        "t_min": series.t_min or 0.0,
        "t_max": series.t_max,
        "spans": len(completed),
        "open_spans": len(spans._open),
        "nodes": series.node_rows(),
        "objects": series.object_rows(top=top),
        "decisions": series.decision_rows(),
        "batching": series.batch_row(),
        "phases": phases,
        "faults": list(series.faults),
        "faults_dropped": series.faults_dropped,
    }
    # Present only for open-loop runs (traffic.* events in the log); the
    # key's absence keeps closed-loop summaries byte-identical.
    if series.traffic or series.phases:
        summary["traffic"] = series.traffic_summary()
    # Present only for proxy-mode payload runs (payload.fetch events).
    if series.payload:
        summary["payload"] = series.payload_summary()
    # Latency anatomy + wasted work (repro.prof) — present whenever the
    # log carries spans; span-free logs keep the old summary shape.
    if completed:
        from repro.prof import analyze_paths, anatomy_summary, wasted_summary

        shed_by_node = {
            tag: tr.shed
            for tag, tr in sorted(series.traffic.items())
            if tr.shed
        }
        summary["anatomy"] = anatomy_summary(analyze_paths(completed, dispatch))
        summary["wasted"] = wasted_summary(
            completed,
            shed=sum(shed_by_node.values()),
            shed_by_node=shed_by_node,
        )
    return summary


def _percentile_row(tally: Tally) -> Dict[str, float]:
    return {
        "count": tally.count,
        "mean": tally.mean,
        "p50": tally.percentile(50.0),
        "p95": tally.percentile(95.0),
        "p99": tally.percentile(99.0),
    }


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------


def _table(headers: List[str], rows: List[List[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        " | ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "-+-".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:.2f}"


def render(summary: Dict[str, Any], fault_limit: int = 12) -> str:
    """Human-readable multi-section report."""
    out: List[str] = []
    span = summary["t_max"] - summary["t_min"]
    out.append(
        f"run: {summary['events']} events over "
        f"[{summary['t_min']:.3f}s, {summary['t_max']:.3f}s] "
        f"({span:.3f}s), {summary['spans']} spans"
        + (f", {summary['open_spans']} unterminated" if summary["open_spans"] else "")
    )

    if summary["nodes"]:
        out.append("\n## per-node")
        out.append(
            _table(
                ["node", "commits", "aborts", "abort%", "tx/s", "peak tx/s",
                 "rpcs", "rpc fail", "inflight", "cache%", "unreach"],
                [
                    [
                        r["node"], str(r["commits"]), str(r["aborts"]),
                        f"{r['abort_ratio'] * 100:.1f}",
                        f"{r['throughput']:.1f}", f"{r['peak_window_tps']:.1f}",
                        str(r["rpc_issued"]), str(r["rpc_failed"]),
                        f"{r['mean_inflight']:.2f}",
                        (
                            f"{r['cache_hit_rate'] * 100:.1f}"
                            if r.get("cache_hits", 0) + r.get("cache_misses", 0)
                            else "-"
                        ),
                        f"{r['unreach']:.3f}",
                    ]
                    for r in summary["nodes"]
                ],
            )
        )

    if summary["objects"]:
        out.append("\n## top contended objects")
        out.append(
            _table(
                ["oid", "conflicts", "migrations", "mean queue", "max queue"],
                [
                    [
                        r["oid"], str(r["conflicts"]), str(r["migrations"]),
                        f"{r['mean_queue']:.3f}", str(r["max_queue"]),
                    ]
                    for r in summary["objects"]
                ],
            )
        )

    if summary["phases"]:
        out.append("\n## span phases (ms)")
        out.append(
            _table(
                ["phase", "count", "mean", "p50", "p95", "p99"],
                [
                    [
                        name, str(row["count"]), _ms(row["mean"]),
                        _ms(row["p50"]), _ms(row["p95"]), _ms(row["p99"]),
                    ]
                    for name, row in summary["phases"].items()
                ],
            )
        )

    traffic = summary.get("traffic")
    if traffic:
        out.append("\n## open-loop traffic")
        out.append(
            f"  offered {traffic['offered']} "
            f"({traffic['offered_rate']:.1f} tx/s) | "
            f"admitted {traffic['admitted']} "
            f"({traffic['admitted_rate']:.1f} tx/s) | "
            f"committed {traffic['committed']} "
            f"({traffic['committed_rate']:.1f} tx/s) | "
            f"shed {traffic['shed']} ({traffic['shed_rate'] * 100:.1f}%) | "
            f"queue p95 {traffic['p95_depth']:.0f}"
        )
        if traffic["nodes"]:
            out.append(
                _table(
                    ["node", "offered", "admitted", "shed", "shed%",
                     "offered tx/s", "mean depth", "p95 depth", "max depth",
                     "wait ms", "max wait"],
                    [
                        [
                            r["node"], str(r["offered"]), str(r["admitted"]),
                            str(r["shed"]), f"{r['shed_rate'] * 100:.1f}",
                            f"{r['offered_rate']:.1f}",
                            f"{r['mean_depth']:.2f}",
                            f"{r['p95_depth']:.0f}", str(r["max_depth"]),
                            _ms(r.get("mean_wait", 0.0)),
                            _ms(r.get("max_wait", 0.0)),
                        ]
                        for r in traffic["nodes"]
                    ],
                )
            )
        if traffic["phases"]:
            out.append("  phases:")
            for p in traffic["phases"]:
                out.append(
                    f"  {p['t']:10.4f}s  {p['name']:<16} "
                    f"rate x{p['rate_scale']:.2f}"
                )

    payload = summary.get("payload")
    if payload:
        out.append("\n## payload plane")
        out.append(
            f"  {payload['resolves']} resolves | "
            f"hits {payload['hits']} "
            f"({payload['hit_rate'] * 100:.1f}%) | "
            f"misses {payload['misses']} | "
            f"fetched {payload['fetched_bytes']} bytes"
        )
        if payload["nodes"]:
            out.append(
                _table(
                    ["node", "resolves", "hits", "misses", "hit%",
                     "fetched bytes"],
                    [
                        [
                            r["node"], str(r["resolves"]), str(r["hits"]),
                            str(r["misses"]), f"{r['hit_rate'] * 100:.1f}",
                            str(r["fetched_bytes"]),
                        ]
                        for r in payload["nodes"]
                    ],
                )
            )

    anatomy = summary.get("anatomy")
    if anatomy and anatomy.get("roots"):
        from repro.prof import SEGMENTS

        out.append("\n## latency anatomy (committed roots)")
        out.append(
            f"  {anatomy['roots']} chains | sojourn mean "
            f"{_ms(anatomy['mean_sojourn'])}ms p50 {_ms(anatomy['p50_sojourn'])} "
            f"p95 {_ms(anatomy['p95_sojourn'])} p99 {_ms(anatomy['p99_sojourn'])} | "
            f"mean attempts {anatomy['mean_attempts']:.2f} | "
            f"residual {anatomy['max_residual']:.2e}"
        )
        segs = anatomy["segments"]
        p99 = anatomy["p99_segments"]
        out.append(
            _table(
                ["segment", "total ms", "share%", "mean ms", "p99 share%"],
                [
                    [
                        name,
                        _ms(segs[name]["total"]),
                        f"{segs[name]['share'] * 100:.1f}",
                        _ms(segs[name]["mean"]),
                        f"{p99[name] * 100:.1f}",
                    ]
                    for name in SEGMENTS
                ],
            )
        )

    wasted = summary.get("wasted")
    if wasted and (wasted.get("attempts") or wasted.get("shed")):
        out.append("\n## wasted work")
        out.append(
            f"  {_ms(wasted['wasted_time'])}ms over {wasted['attempts']} "
            f"aborted attempts | committed-attempt time "
            f"{_ms(wasted['committed_time'])}ms | wasted fraction "
            f"{wasted['wasted_fraction'] * 100:.1f}% | nested "
            f"{wasted['nested_attempts']} attempts "
            f"{_ms(wasted['nested_time'])}ms | parent-caused cascade "
            f"{wasted['parent_caused_attempts']} attempts "
            f"({wasted['nested_parent_rate'] * 100:.1f}% of nested aborts) "
            f"| shed {wasted['shed']}"
        )
        for title, rows in (
            ("cause", wasted["by_cause"]),
            ("node", wasted["by_node"]),
            ("profile", wasted["by_profile"]),
        ):
            if rows:
                out.append(
                    _table(
                        [title, "attempts", "time ms", "share%"],
                        [
                            [
                                r["key"], str(r["attempts"]),
                                _ms(r["time"]), f"{r['share'] * 100:.1f}",
                            ]
                            for r in rows
                        ],
                    )
                )

    batching = summary.get("batching") or {}
    if batching.get("batches"):
        out.append("\n## rpc batching")
        out.append(
            f"  {batching['batches']} flushes carrying "
            f"{batching['batched_messages']} messages "
            f"(mean {batching['mean_batch']:.2f}, "
            f"max {batching['max_batch']} per batch)"
        )

    if summary["decisions"]:
        out.append("\n## scheduler decisions")
        out.append(
            _table(
                ["action", "cause", "count"],
                [
                    [r["action"], r["cause"], str(r["count"])]
                    for r in summary["decisions"]
                ],
            )
        )

    faults = summary["faults"]
    if faults:
        out.append(f"\n## fault timeline ({len(faults)} events)")
        for t, cat, sub in faults[:fault_limit]:
            out.append(f"  {t:10.4f}s  {cat:<22} {sub}")
        hidden = len(faults) - fault_limit + summary.get("faults_dropped", 0)
        if hidden > 0:
            out.append(f"  ... {hidden} more")

    return "\n".join(out)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("jsonl", help="exported JSONL event log")
    parser.add_argument("--window", type=float, default=0.25,
                        help="time-series window (simulated seconds)")
    parser.add_argument("--top", type=int, default=10,
                        help="how many contended objects to list")
    parser.add_argument("--validate", action="store_true",
                        help="check every event against the schema")
    parser.add_argument("--chrome", metavar="OUT",
                        help="also export a Chrome trace_event JSON file")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="print the summary as JSON instead of tables")
    parser.add_argument("--max-fault-lines", type=int, default=12,
                        help="fault-timeline lines before truncation")
    args = parser.parse_args(argv)

    chrome = ChromeTraceWriter(args.chrome) if args.chrome else None
    try:
        summary = summarize(
            load_events(args.jsonl),
            window=args.window, top=args.top,
            validate=args.validate, chrome=chrome,
        )
    except SchemaError as exc:
        print(f"schema error: {exc}", file=sys.stderr)
        return 1
    finally:
        if chrome is not None:
            chrome.close()

    if args.as_json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(render(summary, fault_limit=args.max_fault_lines))
        if chrome is not None:
            print(f"\nchrome trace written to {chrome.path} ({chrome.count} events)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
