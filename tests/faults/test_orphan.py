"""Orphan repatriation: a transferred copy nobody claimed goes home.

The dropped-hand-off scenario: the owner grants an ownership transfer
(deleting its copy; the grant cache keeps the idempotent re-grant), the
response is lost, and the requester never retries — the single writable
copy now exists only in the old owner's ``_granted`` cache.  The sweep
must return it to the home snapshot *before* lease expiry would re-host
an older value.
"""

import pytest

from repro.core.cluster import Cluster
from repro.core.config import ClusterConfig, FaultConfig
from repro.dstm.objects import home_node
from repro.net import MessageType


def home0_oid():
    oid = next(o for o in ("x", "y", "z", "w", "v") if home_node(o, 2) == 0)
    return oid


def make_cluster(**fault_kw):
    kw = dict(
        enabled=True, rpc_timeout=0.1, rpc_max_retries=1, rpc_backoff_cap=0.2,
        orphan_sweep_interval=0.5, orphan_min_age=0.2,
    )
    kw.update(fault_kw)
    return Cluster(ClusterConfig(num_nodes=2, seed=7, faults=FaultConfig(**kw)))


def drop_handoff(cluster, oid, txid="root1"):
    """Node 1 acquires ``oid`` from node 0 and 'loses' the response: the
    grant is never installed, never retried, never registered."""
    replies = []

    def retrieve():
        r = yield from cluster.nodes[1].request(
            0, MessageType.RETRIEVE_REQUEST,
            {"oid": oid, "txid": txid, "mode": "a"},
        )
        replies.append(r.payload)

    cluster.spawn(retrieve())
    cluster.run(until=0.2)
    assert replies[0]["granted"] and replies[0]["transferred"]
    assert oid not in cluster.proxies[0].store, "transfer deletes the copy"
    assert oid in cluster.proxies[0]._granted
    return replies[0]


class TestRepatriation:
    def test_abandoned_grant_returns_to_home_snapshot(self):
        oid = home0_oid()
        cluster = make_cluster()
        cluster.alloc(oid, 42, node=0)
        before = cluster.directories[0].registered_version(oid)
        drop_handoff(cluster, oid)

        cluster.run(until=2.0)

        assert cluster.metrics.orphan_returns.value == 1
        assert cluster.proxies[0]._granted == {}, "sweep drops the cache"
        # Re-hosted at home under a fenced (bumped) version.
        obj = cluster.proxies[0].store[oid]
        assert obj.value == 42 and obj.version > before
        assert cluster.directories[0].owner_of(oid) == 0
        assert cluster.directories[0].registered_version(oid) == obj.version
        assert cluster.authoritative_value(oid) == 42

    def test_object_usable_again_after_repatriation(self):
        oid = home0_oid()
        cluster = make_cluster()
        cluster.alloc(oid, 10, node=0)
        drop_handoff(cluster, oid)
        cluster.run(until=2.0)

        def bump(tx):
            v = yield from tx.read(oid)
            yield from tx.write(oid, v + 1)
            return v

        assert cluster.run_transaction(bump, node=1) == 10
        assert cluster.authoritative_value(oid) == 11

    def test_young_grants_wait_out_min_age(self):
        """An entry younger than min_age may still be claimed by the
        requester's in-flight retries: the sweep must not race them."""
        oid = home0_oid()
        cluster = make_cluster(orphan_min_age=60.0)
        cluster.alloc(oid, 5, node=0)
        drop_handoff(cluster, oid)
        cluster.run(until=3.0)
        assert cluster.metrics.orphan_returns.value == 0
        assert oid in cluster.proxies[0]._granted


class TestFencedReturn:
    def test_return_fenced_when_registry_moved_on(self):
        """If the requester did register after all (or a reclaim won), the
        home refuses the return and the old owner drops its re-grant
        cache — resurrecting the stale copy would fork history."""
        oid = home0_oid()
        cluster = make_cluster()
        cluster.alloc(oid, 1, node=0)
        drop_handoff(cluster, oid)
        # The registry moves past the grant: the requester registered a
        # committed write at a newer version (and holds the copy, so its
        # lease heartbeats keep the entry alive).
        from repro.dstm.objects import VersionedObject

        cluster.directories[0].register(
            oid, owner=1, version=9, value="newer", value_version=9
        )
        cluster.proxies[1].store[oid] = VersionedObject(oid, "newer", 9)
        cluster.run(until=2.0)

        assert cluster.metrics.orphan_returns.value == 0
        assert cluster.proxies[0]._granted == {}, "fenced reply drops cache"
        assert cluster.directories[0].owner_of(oid) == 1
        assert cluster.directories[0].registered_version(oid) == 9
