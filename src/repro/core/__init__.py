"""Public API: cluster facade, atomic transaction runners, metrics,
workload executor, and the experiment harness."""

from repro.core.api import Cluster, SchedulerKind, TransactionHandle
from repro.core.config import ArrivalConfig, ClusterConfig
from repro.core.executor import WorkloadExecutor
from repro.core.metrics import MetricsCollector
from repro.core.experiment import ExperimentResult, run_experiment

__all__ = [
    "ArrivalConfig",
    "Cluster",
    "ClusterConfig",
    "ExperimentResult",
    "MetricsCollector",
    "SchedulerKind",
    "TransactionHandle",
    "WorkloadExecutor",
    "run_experiment",
]
