"""Piggyback batching: co-deliverable messages share one simulated send.

When a node sends several messages to the same destination within a short
coalescing window — a commit's registration fan-out, a read multicast, a
heartbeat burst — a real transport (TCP with Nagle, or an RPC runtime's
write coalescing) puts them on the wire together.  The batcher models
that: the first message to a ``(src, dst)`` link opens a window of
``window`` simulated seconds; everything enqueued to that link before it
closes is flushed as **one batch** that traverses the link once and is
delivered member-by-member, in enqueue order, at the same instant.

Why it matters for the 10-80 node axis: simulation cost scales with the
event count, and per-message delivery events dominate large runs.  A
k-message batch costs one flush event plus one delivery event instead of
k timer events, so the host-side events/sec of big-cluster runs improves
alongside the modelled latency semantics.

Installed onto a :class:`~repro.net.network.Network` like the fault
injector; ``window == 0`` (the default config) never constructs one, so
the legacy per-message path — and byte-identical same-seed runs — is the
default.  Fault injection composes: each batch member individually
consults the injector at flush time, so drops/duplicates/extra delays
keep their per-message semantics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.net.message import Message
from repro.sim import Environment, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.network import Network

__all__ = ["PiggybackBatcher"]


class PiggybackBatcher:
    """Per-link send coalescing with a fixed window."""

    def __init__(
        self,
        env: Environment,
        window: float,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if window <= 0:
            raise ValueError(f"batch window must be > 0, got {window}")
        self.env = env
        self.window = float(window)
        self.tracer = tracer or Tracer()
        self.network: Optional["Network"] = None
        #: open coalescing windows: (src, dst) -> [(message, link delay)]
        self._buffers: Dict[Tuple[int, int], List[Tuple[Message, float]]] = {}
        #: stats (host-side; feed the ``rpc.batch`` obs series)
        self.batches = 0
        self.batched_messages = 0
        self.max_batch = 0

    def install(self, network: "Network") -> "PiggybackBatcher":
        network.batcher = self
        self.network = network
        return self

    # -- send path (called by Network.send for remote messages) ------------

    def enqueue(self, msg: Message, delay: float) -> float:
        """Buffer ``msg`` for its link; returns the scheduled delivery time."""
        key = (msg.src, msg.dst)
        buffer = self._buffers.get(key)
        if buffer is None:
            self._buffers[key] = [(msg, delay)]
            timeout = self.env.timeout(self.window, value=key)
            timeout.add_callback(self._flush)
        else:
            buffer.append((msg, delay))
        # Every member leaves when the window closes and rides one link
        # traversal (static per-link delay, so one time fits all).
        return self.env.now + self.window + delay

    def _flush(self, event) -> None:
        key = event.value
        batch = self._buffers.pop(key)
        size = len(batch)
        self.batches += 1
        self.batched_messages += size
        if size > self.max_batch:
            self.max_batch = size
        if self.tracer.wants("rpc.batch"):
            src, dst = key
            self.tracer.emit(
                self.env.now, "rpc.batch", f"{src}->{dst}",
                src=src, dst=dst, size=size,
            )
        self.network.deliver_batch(batch)

    def mean_batch(self) -> float:
        return self.batched_messages / self.batches if self.batches else 0.0

    def stats(self) -> Dict[str, float]:
        return {
            "batches": self.batches,
            "batched_messages": self.batched_messages,
            "mean_batch": self.mean_batch(),
            "max_batch": self.max_batch,
        }

    def __repr__(self) -> str:
        return (
            f"<PiggybackBatcher window={self.window} batches={self.batches} "
            f"messages={self.batched_messages}>"
        )
