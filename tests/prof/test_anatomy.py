"""Critical-path latency anatomy: exactness and the sum-to-sojourn pin."""

import pytest

from repro.obs.spans import build_spans
from repro.prof import SEGMENTS, analyze_paths, anatomy_summary


def _begin(t, txid, task, attempt, depth=0, parent=None, profile="p"):
    e = {"t": t, "cat": "span.begin", "sub": txid, "task": task,
         "node": "n0", "attempt": attempt, "profile": profile, "depth": depth}
    if parent is not None:
        e["parent"] = parent
    return e


def _phase(t, txid, phase, edge):
    return {"t": t, "cat": "span.phase", "sub": txid, "phase": phase,
            "edge": edge}


def _end(t, txid, task, outcome, reason=None, depth=0):
    e = {"t": t, "cat": "span.end", "sub": txid, "task": task,
         "node": "n0", "outcome": outcome, "depth": depth}
    if reason is not None:
        e["reason"] = reason
    return e


@pytest.fixture()
def hand_trace():
    """One task, hand-built to exercise every blame segment.

    arrival 0.0 -> dispatch 1.0 (admission 1.0)
    attempt r0 [1, 3] aborted busy_object (wasted 2.0), backoff [3, 4]
    attempt r1 [4, 10] committed:
      open [4.5, 5.5] with nested queue [4.8, 5.2]  -> queue .4, network .6
      committed child c0 [5.6, 5.9]                 -> exec
      validate [6.0, 6.5]                           -> validation .5
      aborted child c1 [6.6, 6.8] (owner_failure)   -> wasted .2
      retry gap to child c2 [6.8, 6.9]              -> fault_stall .1
      committed child c2 [6.9, 6.95]                -> exec
      commit [7, 9] with acquire [7.2, 7.8] and register [8.0, 8.4]
                                                    -> commit 1.0, network 1.0
    """
    events = [
        _begin(1.0, "r0", "t1", 0),
        _end(3.0, "r0", "t1", "abort", reason="busy_object"),
        _begin(4.0, "r1", "t1", 1),
        _phase(4.5, "r1", "open", "B"),
        _phase(4.8, "r1", "queue", "B"),
        _phase(5.2, "r1", "queue", "E"),
        _phase(5.5, "r1", "open", "E"),
        _begin(5.6, "c0", "t1", 0, depth=1, parent="r1"),
        _end(5.9, "c0", "t1", "commit", depth=1),
        _phase(6.0, "r1", "validate", "B"),
        _phase(6.5, "r1", "validate", "E"),
        _begin(6.6, "c1", "t1", 0, depth=1, parent="r1"),
        _end(6.8, "c1", "t1", "abort", reason="owner_failure", depth=1),
        _begin(6.9, "c2", "t1", 1, depth=1, parent="r1"),
        _end(6.95, "c2", "t1", "commit", depth=1),
        _phase(7.0, "r1", "commit", "B"),
        _phase(7.2, "r1", "acquire", "B"),
        _phase(7.8, "r1", "acquire", "E"),
        _phase(8.0, "r1", "register", "B"),
        _phase(8.4, "r1", "register", "E"),
        _phase(9.0, "r1", "commit", "E"),
        _end(10.0, "r1", "t1", "commit"),
    ]
    return build_spans(events)


EXPECTED = {
    "admission": 1.0,
    "queue": 0.4,
    "network": 1.6,
    "validation": 0.5,
    "commit": 1.0,
    "exec": 2.2,
    "backoff": 1.0,
    "fault_stall": 0.1,
    "wasted": 2.2,
}


class TestHandTrace:
    def test_exact_segment_decomposition(self, hand_trace):
        (path,) = analyze_paths(hand_trace, dispatch={"t1": 0.0})
        assert path.task == "t1"
        assert path.attempts == 2
        assert path.arrived == 0.0
        assert path.sojourn == pytest.approx(10.0)
        for name in SEGMENTS:
            assert path.segments[name] == pytest.approx(
                EXPECTED[name], abs=1e-12
            ), name
        assert abs(path.residual) < 1e-9

    def test_without_dispatch_window_starts_at_first_begin(self, hand_trace):
        (path,) = analyze_paths(hand_trace)
        assert path.arrived is None
        assert path.start == 1.0
        assert path.segments["admission"] == 0.0
        assert path.sojourn == pytest.approx(9.0)
        assert abs(path.residual) < 1e-9

    def test_uncommitted_tasks_are_skipped(self, hand_trace):
        extra = build_spans([
            _begin(0.0, "x0", "t2", 0),
            _end(1.0, "x0", "t2", "abort", reason="busy_object"),
        ])
        paths = analyze_paths(hand_trace + extra)
        assert [p.task for p in paths] == ["t1"]

    def test_summary_aggregates(self, hand_trace):
        summary = anatomy_summary(analyze_paths(hand_trace, {"t1": 0.0}))
        assert summary["roots"] == 1
        assert summary["mean_attempts"] == 2.0
        assert summary["p99_sojourn"] == pytest.approx(10.0)
        assert summary["max_residual"] < 1e-9
        shares = sum(s["share"] for s in summary["segments"].values())
        assert shares == pytest.approx(1.0)
        assert anatomy_summary([]) == {"roots": 0}


class TestChaosInvariant:
    """The acceptance pin: on a nested+retry trace under faults and
    open-loop admission, every committed chain's blame segments sum to
    its sojourn exactly (|residual| < 1e-9)."""

    @pytest.fixture(scope="class")
    def chaos_paths(self, tmp_path_factory):
        from repro.core.config import ClusterConfig
        from repro.core.experiment import run_experiment
        from repro.obs.report import load_events, summarize

        path = tmp_path_factory.mktemp("prof") / "chaos.jsonl"
        cfg = ClusterConfig(
            num_nodes=6, seed=5, scheduler="rts", cl_threshold=4,
            obs=dict(enabled=True, jsonl_path=str(path)),
            arrival=dict(enabled=True, process="poisson", rate=12.0,
                         zipf_s=1.2, queue_capacity=8),
            # drop-only fault plan: overlapping crash windows can trip the
            # sanitizer's single-writable-copy check under open-loop load
            # (a known, pre-existing caveat — see the replicated-directory
            # item in ROADMAP.md), and CI runs this suite sanitized.
            faults=dict(enabled=True, crash_rate=0.0, drop_rate=0.05),
        )
        result = run_experiment("bank", cfg, read_fraction=0.2,
                                workers_per_node=2, horizon=6.0)
        assert result.commits > 0
        events = list(load_events(str(path)))
        spans = [e for e in events if e["cat"].startswith("span.")]
        assert any(e.get("depth", 0) > 0 for e in spans), "need nested spans"
        dispatch = {
            e["sub"]: float(e["arrived"])
            for e in events if e["cat"] == "traffic.dispatch"
        }
        from repro.obs.spans import build_spans as _build

        return analyze_paths(_build(events), dispatch), summarize(iter(events))

    def test_segments_sum_to_sojourn(self, chaos_paths):
        paths, _ = chaos_paths
        assert paths, "chaos run must commit some chains"
        for p in paths:
            assert abs(p.residual) < 1e-9, (p.task, p.residual, p.segments)
            assert all(v >= 0 for v in p.segments.values()), p.segments

    def test_retry_chains_present(self, chaos_paths):
        paths, _ = chaos_paths
        assert any(p.attempts > 1 for p in paths), "no retries in chaos run"
        assert any(p.segments["wasted"] > 0 for p in paths)

    def test_admission_linked(self, chaos_paths):
        paths, _ = chaos_paths
        assert all(p.arrived is not None for p in paths)
        assert any(p.segments["admission"] > 0 for p in paths)

    def test_report_carries_the_summary(self, chaos_paths):
        _, summary = chaos_paths
        assert summary["anatomy"]["roots"] > 0
        assert summary["anatomy"]["max_residual"] < 1e-9
        assert summary["wasted"]["attempts"] > 0
