"""Arrival processes: determinism, rate fidelity, trace replay."""

import numpy as np
import pytest

from repro.sim import RngRegistry
from repro.traffic import MmppProcess, PoissonProcess, TraceProcess, make_process


def _stream(seed=7, name="traffic.arrivals[0]"):
    return RngRegistry(seed=seed).stream(name)


def _draw_times(process, n, rate=10.0):
    now, times = 0.0, []
    for _ in range(n):
        dt = process.next_interval(now, rate)
        if dt is None:
            break
        now += dt
        times.append(now)
    return times


class TestPoisson:
    def test_same_seed_same_stream(self):
        a = _draw_times(PoissonProcess(_stream()), 500)
        b = _draw_times(PoissonProcess(_stream()), 500)
        assert a == b  # byte identity, not mere closeness

    def test_different_seeds_differ(self):
        a = _draw_times(PoissonProcess(_stream(seed=1)), 50)
        b = _draw_times(PoissonProcess(_stream(seed=2)), 50)
        assert a != b

    def test_mean_rate(self):
        times = _draw_times(PoissonProcess(_stream()), 5000, rate=10.0)
        observed = len(times) / times[-1]
        assert observed == pytest.approx(10.0, rel=0.1)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            PoissonProcess(_stream()).next_interval(0.0, 0.0)


class TestMmpp:
    def test_same_seed_same_stream(self):
        kwargs = dict(burst_factor=6.0, on_fraction=0.2, mean_cycle=1.0)
        a = _draw_times(MmppProcess(_stream(), **kwargs), 500)
        b = _draw_times(MmppProcess(_stream(), **kwargs), 500)
        assert a == b

    def test_long_run_rate_is_normalised(self):
        """The on/off modulation must average to the requested rate."""
        p = MmppProcess(_stream(), burst_factor=8.0, on_fraction=0.25,
                        mean_cycle=0.5)
        times = _draw_times(p, 20000, rate=20.0)
        observed = len(times) / times[-1]
        assert observed == pytest.approx(20.0, rel=0.1)

    def test_bursts_are_burstier_than_poisson(self):
        """Squared coefficient of variation of interarrivals > 1 (Poisson
        has exactly 1): the modulation adds variance."""
        p = MmppProcess(_stream(), burst_factor=10.0, on_fraction=0.1,
                        mean_cycle=2.0)
        times = np.array(_draw_times(p, 8000, rate=10.0))
        gaps = np.diff(times)
        scv = gaps.var() / gaps.mean() ** 2
        assert scv > 1.3

    @pytest.mark.parametrize("kwargs", [
        dict(burst_factor=0.5), dict(on_fraction=0.0),
        dict(on_fraction=1.0), dict(mean_cycle=0.0),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            MmppProcess(_stream(), **kwargs)


class TestTrace:
    def test_exact_replay(self):
        p = TraceProcess([0.5, 1.25, 1.25, 4.0])
        assert _draw_times(p, 10) == [0.5, 1.25, 1.25, 4.0]

    def test_exhaustion_returns_none(self):
        p = TraceProcess([1.0])
        assert p.next_interval(0.0, 1.0) == 1.0
        assert p.next_interval(1.0, 1.0) is None

    def test_skips_past_arrivals(self):
        p = TraceProcess([1.0, 2.0, 3.0])
        assert p.next_interval(2.5, 1.0) == pytest.approx(0.5)

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            TraceProcess([2.0, 1.0])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            TraceProcess([-1.0])


class TestMakeProcess:
    def test_trace_fans_round_robin(self):
        trace = [0.1, 0.2, 0.3, 0.4, 0.5]
        p0 = make_process("trace", _stream(), trace=trace, node=0, num_nodes=2)
        p1 = make_process("trace", _stream(), trace=trace, node=1, num_nodes=2)
        assert p0.times == (0.1, 0.3, 0.5)
        assert p1.times == (0.2, 0.4)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown arrival process"):
            make_process("uniform", _stream())

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError, match="non-empty trace"):
            make_process("trace", _stream(), trace=())
