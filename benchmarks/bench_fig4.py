"""Figure 4 — throughput at low contention (90% reads), per benchmark.

Bench-scale series over a reduced node axis; asserts the figure's shape
properties (throughput grows with node count; RTS is competitive with
the baselines).  Full series: ``python -m repro.analysis.reproduce fig4``.

Usage::

    pytest benchmarks/bench_fig4.py                          # shape assertions
    python benchmarks/bench_fig4.py --trace-out run.jsonl    # traced cell
    python benchmarks/bench_fig4.py --nodes 10,20,40,80      # scale sweep
    python benchmarks/bench_fig4.py --nodes 80 --batch-window 0.002 --cache
"""

import argparse
import os
import sys

if __package__ in (None, ""):  # executed as a script: self-locate
    _root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    sys.path.insert(0, os.path.join(_root, "src"))
    sys.path.insert(0, _root)

import pytest

from benchmarks.conftest import add_traffic_args, arrival_from_args, cell_spec, run_cell
from repro.analysis.scales import BENCHMARKS, parse_nodes
from repro.par import add_par_args, run_cells

NODE_AXIS = (6, 12, 18)


def _series(workload, scheduler, bench_cache):
    return [
        bench_cache(
            ("fig4", workload, scheduler, nodes),
            lambda n=nodes: run_cell(workload, scheduler, 0.9, nodes=n),
        )
        for nodes in NODE_AXIS
    ]


@pytest.mark.parametrize("workload", BENCHMARKS)
def test_throughput_scales_with_nodes(workload, bench_cache):
    """Figure 4's dominant visual: more nodes, more committed tx/s."""
    series = _series(workload, "rts", bench_cache)
    thr = [r.throughput for r in series]
    assert thr[-1] > thr[0] * 1.3, f"{workload}: no scaling {thr}"


@pytest.mark.parametrize("workload", ["bank", "dht"])
def test_rts_competitive_at_low_contention(workload, bench_cache):
    """RTS tracks (or beats) TFA at low contention, as in the paper."""
    rts = _series(workload, "rts", bench_cache)
    tfa = _series(workload, "tfa", bench_cache)
    rts_total = sum(r.throughput for r in rts)
    tfa_total = sum(r.throughput for r in tfa)
    assert rts_total >= tfa_total * 0.9


def test_benchmark_fig4_cell(benchmark):
    """pytest-benchmark: wall-clock cost of one Figure 4 cell."""
    result = benchmark.pedantic(
        lambda: run_cell("ll", "rts", 0.9, nodes=12), rounds=1, iterations=1,
    )
    assert result.commits > 0


# ---------------------------------------------------------------------------
# CLI: one traced Figure-4 cell (the README observability quickstart)
# ---------------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="bank", choices=sorted(BENCHMARKS))
    parser.add_argument("--scheduler", default="rts")
    parser.add_argument("--nodes", default="12",
                        help="node count, comma list (10,20,40,80), or a "
                             "scale preset name; multi-count runs a sweep")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--horizon", type=float, default=None,
                        help="simulated seconds per cell (bench default if unset)")
    parser.add_argument("--batch-window", type=float, default=0.0,
                        help="piggyback-batching coalescing window in "
                             "simulated seconds (0 = off)")
    parser.add_argument("--cache", action="store_true",
                        help="enable the version-fenced directory lookup cache")
    parser.add_argument("--trace-out", metavar="RUN.JSONL", default=None,
                        help="export an obs event log (largest cell); inspect "
                             "with `python -m repro.obs.report RUN.JSONL`")
    parser.add_argument("--chrome-out", metavar="TRACE.JSON", default=None,
                        help="export a Chrome trace_event file (Perfetto)")
    parser.add_argument("--profile", action="store_true",
                        help="kernel-profile the largest cell (counters "
                             "mode; timeline unchanged) and print top sites")
    parser.add_argument("--profile-folded", metavar="OUT.FOLDED", default=None,
                        help="with --profile: write folded flamegraph stacks")
    add_traffic_args(parser)
    add_par_args(parser)
    args = parser.parse_args(argv)
    arrival = arrival_from_args(args, parser)

    node_axis = parse_nodes(args.nodes)
    traced = max(node_axis)
    specs = []
    for nodes in node_axis:
        kwargs = {"rpc": dict(batch_window=args.batch_window, cache=args.cache)}
        if arrival is not None:
            kwargs["arrival"] = arrival
        if args.horizon is not None:
            kwargs["horizon"] = args.horizon
        if nodes == traced and (args.trace_out or args.chrome_out):
            kwargs["obs"] = dict(enabled=True, jsonl_path=args.trace_out,
                                 chrome_path=args.chrome_out)
        if nodes == traced and (args.profile or args.profile_folded):
            kwargs["prof"] = dict(enabled=True,
                                  folded_path=args.profile_folded)
        specs.append(cell_spec(args.workload, args.scheduler, 0.9,
                               nodes=nodes, seed=args.seed, **kwargs))
    sweep = run_cells(specs, jobs=args.jobs, cache_dir=args.cache_dir)

    header = (f"{'nodes':>5} | {'commits':>7} | {'tx/s':>8} | {'abort%':>6} | "
              f"{'msgs':>8} | {'cache%':>6} | {'batch':>6}")
    print(f"{args.workload}/{args.scheduler} scale sweep "
          f"(batch_window={args.batch_window}, cache={args.cache}, "
          f"jobs={args.jobs})")
    print(header)
    print("-" * len(header))
    for outcome in sweep.in_spec_order():
        r = outcome.result
        nodes = r.num_nodes
        x = r.extra
        cache_pct = (f"{x['rpc_cache_hit_rate'] * 100:.1f}"
                     if "rpc_cache_hit_rate" in x else "-")
        mean_batch = (f"{x['rpc_mean_batch']:.2f}"
                      if "rpc_mean_batch" in x else "-")
        open_loop = ""
        if "stable" in x:
            open_loop = (f" | offered {x['offered_rate']:>6.1f} tx/s, "
                         f"shed {x['shed_rate'] * 100:.1f}%, "
                         f"{'stable' if x['stable'] else 'UNSTABLE'}")
        print(f"{nodes:>5} | {r.commits:>7} | {r.throughput:>8.1f} | "
              f"{r.abort_ratio * 100:>6.1f} | {r.messages_sent:>8} | "
              f"{cache_pct:>6} | {mean_batch:>6}{open_loop}")
        if r.commits <= 0:
            print(f"FAIL: no commits at {nodes} nodes")
            return 1
    if args.cache_dir:
        s = sweep.cache_stats
        print(f"cell cache: {sweep.from_cache}/{len(specs)} served "
              f"(hits={s['hits']} misses={s['misses']} writes={s['writes']})")
    if args.trace_out:
        print(f"obs event log: {args.trace_out} "
              f"(python -m repro.obs.report {args.trace_out})")
    if args.chrome_out:
        print(f"chrome trace: {args.chrome_out} (load in Perfetto)")
    if args.profile or args.profile_folded:
        for outcome in sweep.in_spec_order():
            snap = outcome.result.extra.get("prof")
            if not snap:
                continue
            print(f"\nkernel profile ({snap['events']} events, "
                  f"{snap['mode']}, {snap['sites']} sites):")
            for row in snap["top"]:
                print(f"  {row['event']:<10} {row['site']:<28} "
                      f"{row['count']:>10,}")
        if args.profile_folded:
            print(f"folded stacks: {args.profile_folded}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
