"""Determinism-linter unit tests plus the repo gate: ``src/`` itself must
lint clean within the committed suppression budget."""

import textwrap
from pathlib import Path

from repro.check.lint import DEFAULT_BUDGET, lint_paths, lint_source, load_budget

REPO = Path(__file__).resolve().parents[2]


def findings(src: str):
    found, _ = lint_source("<test>", textwrap.dedent(src))
    return found


def rule_ids(src: str):
    return [f.rule for f in findings(src)]


class TestWallClock:
    def test_time_module_calls(self):
        assert rule_ids("import time\nt = time.time()\n") == ["det-wall-clock"]
        assert rule_ids(
            "import time as _t\nt = _t.perf_counter()\n"
        ) == ["det-wall-clock"]

    def test_from_import(self):
        assert rule_ids(
            "from time import monotonic\nt = monotonic()\n"
        ) == ["det-wall-clock"]

    def test_datetime_now(self):
        assert rule_ids(
            "from datetime import datetime\nd = datetime.now()\n"
        ) == ["det-wall-clock"]
        assert rule_ids(
            "import datetime\nd = datetime.datetime.utcnow()\n"
        ) == ["det-wall-clock"]

    def test_deterministic_time_use_is_clean(self):
        # Simulated clocks and arithmetic on stored floats are fine.
        assert rule_ids("now = env.now\nlater = now + 0.5\n") == []


class TestUnseededRng:
    def test_random_module(self):
        assert rule_ids("import random\nx = random.random()\n") == [
            "det-unseeded-rng"
        ]
        assert rule_ids(
            "from random import randint\nx = randint(1, 6)\n"
        ) == ["det-unseeded-rng"]

    def test_numpy_global_rng(self):
        assert rule_ids(
            "import numpy as np\nnp.random.shuffle(xs)\n"
        ) == ["det-unseeded-rng"]
        assert rule_ids(
            "import numpy as np\ng = np.random.default_rng()\n"
        ) == ["det-unseeded-rng"]

    def test_seeded_numpy_api_is_clean(self):
        assert rule_ids(
            "import numpy as np\n"
            "g = np.random.default_rng(7)\n"
            "s = np.random.SeedSequence(entropy=1, spawn_key=(2,))\n"
        ) == []

    def test_instance_methods_are_clean(self):
        # rng.random() on a seeded Generator instance is the blessed path.
        assert rule_ids("x = rng.random()\ny = rng.integers(0, 5)\n") == []


class TestUnorderedIter:
    def test_set_literal_and_constructor(self):
        assert rule_ids("for x in {1, 2, 3}:\n    pass\n") == [
            "det-unordered-iter"
        ]
        assert rule_ids("ys = [f(x) for x in set(xs)]\n") == [
            "det-unordered-iter"
        ]

    def test_tracked_local_set_name(self):
        assert rule_ids(
            "s = set()\ns.add(1)\nfor x in s:\n    pass\n"
        ) == ["det-unordered-iter"]

    def test_set_annotated_parameter(self):
        src = """
        from typing import Set

        def emit(pending: Set[str]):
            for oid in pending:
                use(oid)
        """
        assert rule_ids(src) == ["det-unordered-iter"]

    def test_set_typed_self_attribute(self):
        src = """
        class Proxy:
            def __init__(self):
                self.acquired: set = set()

            def release_all(self):
                for oid in self.acquired:
                    release(oid)
        """
        assert rule_ids(src) == ["det-unordered-iter"]

    def test_sorted_wrapping_is_clean(self):
        assert rule_ids(
            "s = set(xs)\nfor x in sorted(s):\n    pass\n"
        ) == []

    def test_rebinding_to_ordered_value_clears_tracking(self):
        assert rule_ids(
            "s = set(xs)\ns = sorted(s)\nfor x in s:\n    pass\n"
        ) == []

    def test_set_union_expression(self):
        assert rule_ids(
            "a = set(xs)\nfor x in a | {1}:\n    pass\n"
        ) == ["det-unordered-iter"]


class TestIdOrderAndDefaults:
    def test_id_and_hash(self):
        assert rule_ids("k = id(obj)\n") == ["det-id-order"]
        assert rule_ids("k = hash(name)\n") == ["det-id-order"]

    def test_mutable_default(self):
        assert rule_ids("def f(xs=[]):\n    pass\n") == ["det-mutable-default"]
        assert rule_ids(
            "def f(*, cache=dict()):\n    pass\n"
        ) == ["det-mutable-default"]

    def test_none_default_is_clean(self):
        assert rule_ids("def f(xs=None, n=3, s='x'):\n    pass\n") == []


class TestSuppressions:
    def test_justified_suppression_silences_the_finding(self):
        src = (
            "import time\n"
            "t = time.time()  # check: allow[det-wall-clock] -- host-side only\n"
        )
        found, sups = lint_source("<test>", src)
        assert found == []
        assert len(sups) == 1 and sups[0].used == {"det-wall-clock"}

    def test_bare_allow_is_itself_a_finding(self):
        src = (
            "import time\n"
            "t = time.time()  # check: allow[det-wall-clock]\n"
        )
        assert {f.rule for f in findings(src)} == {
            "det-wall-clock", "det-bare-allow"
        }

    def test_unknown_rule_id_is_a_finding(self):
        assert "det-bare-allow" in rule_ids(
            "x = 1  # check: allow[no-such-rule] -- why\n"
        )

    def test_stale_suppression_is_a_finding(self):
        assert rule_ids(
            "x = 1  # check: allow[det-wall-clock] -- nothing here\n"
        ) == ["det-bare-allow"]

    def test_docstring_examples_are_not_suppressions(self):
        src = (
            '"""Example:\n'
            "    t = time.time()  # check: allow[det-wall-clock] -- why\n"
            '"""\n'
        )
        found, sups = lint_source("<test>", src)
        assert found == [] and sups == []


class TestRepoGate:
    """The acceptance criterion, as a test: src/ lints clean in budget."""

    def test_src_tree_is_clean(self):
        found, sups = lint_paths([str(REPO / "src")])
        assert [f.render() for f in found] == []
        budget = load_budget(str(REPO / "pyproject.toml"))
        assert len(sups) <= budget
        for sup in sups:
            assert sup.rules and sup.justification

    def test_budget_comes_from_pyproject(self):
        assert load_budget(str(REPO / "pyproject.toml")) == 4
        assert load_budget("/nonexistent/pyproject.toml") == DEFAULT_BUDGET
