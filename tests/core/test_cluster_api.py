"""Unit tests for the Cluster facade and top-level package API."""

import pytest

import repro
from repro.core.cluster import Cluster
from repro.core.config import ClusterConfig, SchedulerKind
from repro.scheduler.backoff import BackoffScheduler
from repro.scheduler.rts import RtsScheduler
from repro.scheduler.tfa_baseline import TfaScheduler


class TestConstruction:
    def test_kwargs_shortcut(self):
        cluster = Cluster(num_nodes=3, seed=9, scheduler="tfa")
        assert cluster.num_nodes == 3
        assert cluster.config.scheduler is SchedulerKind.TFA

    def test_config_plus_overrides(self):
        base = ClusterConfig(num_nodes=4, seed=1)
        cluster = Cluster(base, seed=5)
        assert cluster.config.seed == 5
        assert cluster.config.num_nodes == 4

    def test_one_component_set_per_node(self):
        cluster = Cluster(num_nodes=5, seed=0)
        assert len(cluster.nodes) == 5
        assert len(cluster.proxies) == 5
        assert len(cluster.engines) == 5
        assert len(cluster.directories) == 5

    @pytest.mark.parametrize("kind,cls", [
        (SchedulerKind.RTS, RtsScheduler),
        (SchedulerKind.TFA, TfaScheduler),
        (SchedulerKind.TFA_BACKOFF, BackoffScheduler),
    ])
    def test_scheduler_kinds_instantiated(self, kind, cls):
        cluster = Cluster(num_nodes=2, seed=0, scheduler=kind)
        assert isinstance(cluster.scheduler_of(0), cls)

    def test_schedulers_are_per_node(self):
        cluster = Cluster(num_nodes=3, seed=0)
        assert cluster.scheduler_of(0) is not cluster.scheduler_of(1)


class TestAlloc:
    def test_round_robin_placement(self):
        cluster = Cluster(num_nodes=3, seed=0)
        for i in range(6):
            cluster.alloc(f"o{i}", i)
        for i in range(6):
            assert cluster.proxies[i % 3].owns(f"o{i}")

    def test_explicit_placement_and_directory(self):
        cluster = Cluster(num_nodes=4, seed=0)
        cluster.alloc("x", "v", node=2)
        assert cluster.owner_of("x") == 2
        assert cluster.committed_value("x") == "v"

    def test_committed_value_missing(self):
        cluster = Cluster(num_nodes=2, seed=0)
        with pytest.raises(KeyError):
            cluster.committed_value("nothing")


class TestTaskIds:
    def test_unique_task_ids(self):
        cluster = Cluster(num_nodes=2, seed=0)
        ids = {cluster.new_task_id(0) for _ in range(10)}
        assert len(ids) == 10


class TestPackageSurface:
    def test_lazy_reexports(self):
        assert repro.Cluster is Cluster
        assert repro.SchedulerKind is SchedulerKind
        assert repro.ClusterConfig is ClusterConfig
        from repro.dstm.errors import TransactionAborted

        assert repro.TransactionAborted is TransactionAborted

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            repro.does_not_exist

    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2
