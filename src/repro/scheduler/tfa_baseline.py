"""Plain TFA: no transactional scheduler.

This is the "TFA" competitor in §IV: when a request hits a busy object the
requester's root transaction simply aborts and restarts immediately,
re-requesting *all* of its objects (closed-nested children included) —
Lemma 3.2's cost model.
"""

from __future__ import annotations

from repro.dstm.errors import AbortReason
from repro.dstm.transaction import Transaction
from repro.scheduler.base import ConflictContext, ConflictDecision, SchedulerPolicy

__all__ = ["TfaScheduler"]


class TfaScheduler(SchedulerPolicy):
    """Abort the loser; retry with zero stall."""

    name = "tfa"

    def on_conflict(self, ctx: ConflictContext) -> ConflictDecision:
        return ConflictDecision.abort()

    def retry_backoff(self, root: Transaction, reason: AbortReason, attempt: int) -> float:
        return 0.0
