"""The observability event schema.

Every exported observation is one flat JSON object (one line of the JSONL
log) derived from a :class:`~repro.sim.trace.TraceRecord`:

* ``t``   — simulation time (float seconds);
* ``cat`` — event category (dot-separated, e.g. ``span.begin``);
* ``sub`` — the subject (a txid, oid, node tag ``n<id>``, or message tag);
* any further keys — category-specific details, all JSON scalars.

Categories (the span/series/audit model; see DESIGN.md "Observability"):

``span.begin``
    A transaction *attempt* started.  ``task`` is the stable logical id
    shared by every retry attempt (the retry chain); ``attempt`` numbers
    attempts within it; ``parent`` (present on nested children) links to
    the enclosing level's span; ``depth`` is the nesting depth.
``span.end``
    The attempt finished: ``outcome`` is ``commit`` or ``abort`` (with
    ``reason``, and ``oid`` when a specific object was at fault).
``span.phase``
    A phase edge inside an attempt: ``phase`` names it (``open``,
    ``queue``, ``commit``, ``acquire``, ``register``, ``validate``),
    ``edge`` is ``B`` (begin) or ``E`` (end).  Phases nest; an abort may
    leave phases open — consumers close them at the span's ``span.end``.
``sched.decision``
    One owner-side scheduler verdict for a conflicting retrieve request:
    ``action`` (``enqueue`` | ``abort`` | ``local_wait``), ``cause``
    (``enqueue`` | ``short_exec`` | ``high_cl`` | ``baseline`` | ``local``),
    plus the inputs that produced it (``cl``, ``threshold``, ``bk``,
    ``elapsed``, ``backoff``).
``rpc.issue`` / ``rpc.done``
    Proxy RPC lifecycle; ``rpc.done`` carries ``ok`` and ``retries``.
``rpc.batch``
    One piggyback-batch flush on the wire: ``src``, ``dst`` and ``size``
    (messages coalesced into the single simulated send).
``rpc.cache``
    One directory-lookup cache probe on the open path: ``node`` and
    ``hit`` (the cluster-level hit rate is this series reduced).
``payload.fetch``
    One payload-plane resolve at first actual read of a grant: ``node``,
    ``hit`` (resolved-bytes cache probe at the grant's version fence)
    and ``bytes`` (bulk bytes pulled on a miss; 0 on a hit).
``obs.queue``
    Gauge: per-object requester-queue length at its owner (``node``,
    ``len``) whenever it changes.
``traffic.arrival``
    One open-loop arrival at a node's admission queue: ``node``,
    ``admitted`` (False = shed) and ``phase`` (the active scenario
    phase, ``steady`` outside scenarios).
``traffic.dispatch``
    An admitted arrival left the admission queue and became a root
    transaction: ``sub`` is the task id the retry chain will carry,
    ``arrived`` the queue-entry time and ``waited`` the admission wait
    (``t - arrived``).  Links queueing delay to span chains for the
    latency-anatomy pass (:mod:`repro.prof.anatomy`).
``traffic.queue``
    Gauge: a node's admission-queue depth (``node``, ``len``) whenever
    it changes.
``traffic.phase``
    A scenario phase boundary: ``name`` and ``rate_scale`` of the phase
    that just activated (subject is the scenario name).
``fault.*``
    Fault-injection and recovery events (drops, duplicates, delays,
    crash/restart and partition windows, RPC retries, orphan
    repatriation) — see :mod:`repro.faults`.

Validation here is deliberately hand-rolled (no jsonschema dependency):
:func:`validate_event` checks the base shape plus per-category required
keys, and is what the CI step runs over every exported line.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable

from repro.sim.trace import TraceRecord

__all__ = [
    "OBS_CATEGORIES",
    "SPAN_PHASES",
    "SchemaError",
    "record_to_event",
    "validate_event",
    "validate_events",
]

#: phases a span.phase event may carry (order used by report tables)
SPAN_PHASES = ("open", "queue", "commit", "acquire", "register", "validate")

#: every category the obs layer emits or consumes; the cluster enables
#: these on the tracer when observability is on.
OBS_CATEGORIES = frozenset(
    {
        "span.begin",
        "span.end",
        "span.phase",
        "sched.decision",
        "rpc.issue",
        "rpc.done",
        "rpc.batch",
        "rpc.cache",
        "payload.fetch",
        "obs.queue",
        "traffic.arrival",
        "traffic.dispatch",
        "traffic.queue",
        "traffic.phase",
        "dstm.conflict",
        "dstm.grant",
        "dir.owner",
        "fault.reclaim",
        "fault.drop",
        "fault.dup",
        "fault.delay",
        "fault.crash",
        "fault.restart",
        "fault.partition",
        "fault.partition_end",
        "fault.rpc_retry",
        "fault.orphan_return",
    }
)

_SCALARS = (str, int, float, bool, type(None))

#: per-category required detail keys (beyond the base t/cat/sub shape)
_REQUIRED: Dict[str, frozenset] = {
    "span.begin": frozenset({"task", "node", "attempt", "profile", "depth"}),
    "span.end": frozenset({"task", "node", "outcome"}),
    "span.phase": frozenset({"phase", "edge"}),
    "sched.decision": frozenset({"node", "action", "cause"}),
    "rpc.issue": frozenset({"node", "dst"}),
    "rpc.done": frozenset({"node", "dst", "ok", "retries"}),
    "rpc.batch": frozenset({"size"}),
    "rpc.cache": frozenset({"node", "hit"}),
    "payload.fetch": frozenset({"node", "hit"}),
    "obs.queue": frozenset({"node", "len"}),
    "traffic.arrival": frozenset({"node", "admitted", "phase"}),
    "traffic.dispatch": frozenset({"node", "arrived", "waited"}),
    "traffic.queue": frozenset({"node", "len"}),
    "traffic.phase": frozenset({"name", "rate_scale"}),
    "fault.drop": frozenset({"src", "dst"}),
}

_SPAN_OUTCOMES = frozenset({"commit", "abort"})
_PHASE_EDGES = frozenset({"B", "E"})
_DECISION_ACTIONS = frozenset({"enqueue", "abort", "local_wait"})


class SchemaError(ValueError):
    """An exported event violates the observability schema."""


def record_to_event(record: TraceRecord) -> Dict[str, Any]:
    """Flatten a :class:`TraceRecord` into its canonical event dict.

    Detail keys are merged at the top level; the reserved keys ``t``,
    ``cat`` and ``sub`` always win over a same-named detail.
    """
    event: Dict[str, Any] = dict(record.details)
    event["t"] = record.time
    event["cat"] = record.category
    event["sub"] = record.subject
    return event


def validate_event(event: Any) -> None:
    """Raise :class:`SchemaError` unless ``event`` is schema-conformant."""
    if not isinstance(event, dict):
        raise SchemaError(f"event must be an object, got {type(event).__name__}")
    for key, kinds in (("t", (int, float)), ("cat", str), ("sub", str)):
        if key not in event:
            raise SchemaError(f"missing required key {key!r}: {event}")
        if not isinstance(event[key], kinds) or isinstance(event[key], bool):
            if key != "t" or not isinstance(event[key], (int, float)):
                raise SchemaError(f"key {key!r} has wrong type in {event}")
    if event["t"] < 0:
        raise SchemaError(f"negative time in {event}")
    for key, value in event.items():
        if not isinstance(value, _SCALARS):
            raise SchemaError(f"non-scalar detail {key!r}={value!r} in {event}")
    cat = event["cat"]
    required = _REQUIRED.get(cat)
    if required:
        missing = required - event.keys()
        if missing:
            raise SchemaError(f"{cat}: missing {sorted(missing)} in {event}")
    if cat == "span.end" and event["outcome"] not in _SPAN_OUTCOMES:
        raise SchemaError(f"span.end outcome {event['outcome']!r} invalid")
    if cat == "span.phase":
        if event["edge"] not in _PHASE_EDGES:
            raise SchemaError(f"span.phase edge {event['edge']!r} invalid")
        if event["phase"] not in SPAN_PHASES:
            raise SchemaError(f"span.phase phase {event['phase']!r} invalid")
    if cat == "sched.decision" and event["action"] not in _DECISION_ACTIONS:
        raise SchemaError(f"sched.decision action {event['action']!r} invalid")


def validate_events(events: Iterable[Any]) -> int:
    """Validate a stream of events; returns how many passed."""
    count = 0
    last_t = 0.0
    for event in events:
        validate_event(event)
        if event["t"] < last_t:
            raise SchemaError(
                f"events out of time order: {event['t']} after {last_t}"
            )
        last_t = event["t"]
        count += 1
    return count
