"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` file regenerates one artefact of the paper's
evaluation (a table or a figure) at a scaled-down default.  Two usage
modes:

* ``pytest benchmarks/ --benchmark-only`` — every benchmark function runs
  one representative cell through pytest-benchmark (wall-clock cost of
  the simulation itself) and asserts the reproduction's shape properties
  on the simulated metrics;
* ``python -m repro.analysis.reproduce <artefact> [--scale full]`` —
  regenerates the complete table/figure series (see EXPERIMENTS.md).

Cells run through ``repro.par``: results are served from an on-disk
content-addressed cache (default ``benchmarks/.cell_cache``; override
with ``REPRO_CELL_CACHE=<dir>``, disable with ``REPRO_CELL_CACHE=``),
so benchmark pytest reruns skip already-computed cells.  CLI sweeps
accept ``--jobs``/``--cache-dir`` to fan cells across processes.
"""

import os
from pathlib import Path

import pytest

from repro.core.config import ClusterConfig, SchedulerKind
from repro.core.experiment import ExperimentResult
from repro.par import CellSpec, run_cells

#: scaled-down defaults shared by all bench files
BENCH_NODES = 12
BENCH_HORIZON = 8.0
BENCH_WORKERS = 2
BENCH_SEED = 1

#: default on-disk cell cache for pytest runs (rerunning the benchmark
#: suite recomputes nothing); deterministic results make serving from
#: cache observably identical to recomputing
_DEFAULT_CACHE = str(Path(__file__).resolve().parent / ".cell_cache")

#: sentinel: "caller did not choose" — use the suite's default cache
SESSION_CACHE = "<session>"


def cache_dir_or_default(cache_dir):
    """Resolve a --cache-dir style value to a directory or None."""
    if cache_dir == SESSION_CACHE:
        return os.environ.get("REPRO_CELL_CACHE", _DEFAULT_CACHE) or None
    return cache_dir


def cell_spec(
    workload: str,
    scheduler: SchedulerKind | str,
    read_fraction: float,
    nodes: int = BENCH_NODES,
    horizon: float = BENCH_HORIZON,
    seed: int = BENCH_SEED,
    **config_kwargs,
) -> CellSpec:
    """One experiment cell at bench scale (the repro.par unit)."""
    cfg = ClusterConfig(
        num_nodes=nodes, seed=seed, scheduler=SchedulerKind(scheduler),
        cl_threshold=config_kwargs.pop("cl_threshold", 4), **config_kwargs,
    )
    return CellSpec(
        workload, cfg, read_fraction=read_fraction,
        workers_per_node=BENCH_WORKERS, horizon=horizon,
    )


def run_cell(
    workload: str,
    scheduler: SchedulerKind | str,
    read_fraction: float,
    nodes: int = BENCH_NODES,
    horizon: float = BENCH_HORIZON,
    seed: int = BENCH_SEED,
    cache_dir: str | None = SESSION_CACHE,
    **config_kwargs,
) -> ExperimentResult:
    """One experiment cell at bench scale, served from the cell cache."""
    spec = cell_spec(workload, scheduler, read_fraction,
                     nodes=nodes, horizon=horizon, seed=seed, **config_kwargs)
    run = run_cells([spec], jobs=1, cache_dir=cache_dir_or_default(cache_dir))
    return run.outcomes[0].result


def add_traffic_args(parser):
    """Attach the shared open-loop traffic flags to a bench CLI parser."""
    from repro.traffic import SCENARIOS, SHED_POLICIES

    group = parser.add_argument_group("open-loop traffic (repro.traffic)")
    group.add_argument(
        "--arrival", default=None, metavar="KIND:RATE",
        help="run open-loop: poisson:<rate> or mmpp:<rate>[:<burst>] "
             "(cluster-wide tx/s); unset keeps the closed worker loop",
    )
    group.add_argument(
        "--zipf", type=float, default=None, metavar="S",
        help="Zipf skew of object popularity (open-loop only)",
    )
    group.add_argument(
        "--scenario", default=None, choices=sorted(SCENARIOS),
        help="mid-run load script (open-loop only)",
    )
    group.add_argument(
        "--queue-capacity", type=int, default=64,
        help="per-node admission queue bound (open-loop only)",
    )
    group.add_argument(
        "--shed-policy", default="drop-newest", choices=SHED_POLICIES,
        help="who is shed when an admission queue is full",
    )
    return group


def arrival_from_args(args, parser):
    """Build the ArrivalConfig selected by :func:`add_traffic_args` flags.

    Returns None when ``--arrival`` was not given (closed loop); open-loop
    modifiers without ``--arrival`` are rejected via ``parser.error``.
    """
    from repro.core.config import ArrivalConfig

    if args.arrival is None:
        for flag, value in (("--zipf", args.zipf), ("--scenario", args.scenario)):
            if value is not None:
                parser.error(f"{flag} needs --arrival (it shapes open-loop traffic)")
        return None
    parts = args.arrival.split(":")
    kind = parts[0]
    if kind not in ("poisson", "mmpp") or len(parts) < 2:
        parser.error(
            f"--arrival must be poisson:<rate> or mmpp:<rate>[:<burst>], "
            f"got {args.arrival!r}"
        )
    try:
        rate = float(parts[1])
        burst = float(parts[2]) if len(parts) > 2 else 4.0
    except ValueError:
        parser.error(f"--arrival has a non-numeric field: {args.arrival!r}")
    if len(parts) > 3 or (kind == "poisson" and len(parts) > 2):
        parser.error(f"--arrival has too many fields: {args.arrival!r}")
    return ArrivalConfig(
        enabled=True, process=kind, rate=rate, burst_factor=burst,
        zipf_s=args.zipf if args.zipf is not None else 0.0,
        scenario=args.scenario,
        queue_capacity=args.queue_capacity,
        shed_policy=args.shed_policy,
    )


@pytest.fixture(scope="session")
def bench_cache():
    """Compatibility shim for cell memoisation across benchmark functions.

    Historically an in-memory session dict; the on-disk cell cache in
    :func:`run_cell` now provides the same skip-if-computed behaviour
    (and survives across sessions), so this just invokes the thunk.
    """

    def get(key, thunk):
        return thunk()

    return get
