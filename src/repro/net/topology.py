"""Metric-space network topologies with static link delays.

A :class:`Topology` places ``num_nodes`` nodes in a 2-D metric space and
derives a symmetric delay matrix, affinely mapping metric distance onto the
paper's [1 ms, 50 ms] link-delay band.  Supported placements:

* ``UNIFORM`` — i.i.d. uniform positions in the unit square (default; the
  paper's "nodes scattered in a metric space"),
* ``GRID`` — a regular √N×√N grid,
* ``RING`` — nodes on a circle (maximises distance spread),
* ``CLUSTERED`` — Gaussian blobs around a few cluster heads, modelling
  rack locality.

All delays are deterministic functions of (seed, kind, num_nodes): the
network is *static*, exactly as in §IV-A of the paper.
"""

from __future__ import annotations

import enum
import math
from typing import Optional

import networkx as nx
import numpy as np

__all__ = ["Topology", "TopologyKind", "MS"]

#: One millisecond in simulation time units (we simulate in seconds).
MS = 1e-3


class TopologyKind(str, enum.Enum):
    UNIFORM = "uniform"
    GRID = "grid"
    RING = "ring"
    CLUSTERED = "clustered"


class Topology:
    """Node positions plus the static pairwise delay matrix."""

    def __init__(
        self,
        num_nodes: int,
        rng: np.random.Generator,
        kind: TopologyKind = TopologyKind.UNIFORM,
        min_delay: float = 1.0 * MS,
        max_delay: float = 50.0 * MS,
        num_clusters: int = 4,
        bandwidth: Optional[float] = None,
    ) -> None:
        if num_nodes < 1:
            raise ValueError(f"need >= 1 node, got {num_nodes}")
        if not 0 < min_delay <= max_delay:
            raise ValueError(f"need 0 < min_delay <= max_delay, got [{min_delay}, {max_delay}]")
        if bandwidth is not None and bandwidth <= 0:
            raise ValueError(f"bandwidth must be > 0, got {bandwidth}")
        #: per-link bandwidth baseline (bytes/second); None until the
        #: payload plane installs one — :meth:`bandwidth_of` is the
        #: per-link lookup the wire cost model binds.
        self.link_bandwidth = float(bandwidth) if bandwidth is not None else None
        self.num_nodes = num_nodes
        self.kind = TopologyKind(kind)
        self.min_delay = float(min_delay)
        self.max_delay = float(max_delay)
        self.positions = self._place(rng, num_clusters)
        self.delays = self._delay_matrix()
        # Hot-path memoisation: the simulation pays a delay lookup per
        # message, and scalar-indexing the numpy matrix (plus the float()
        # coercion) costs several times a plain nested-list index.
        # ``tolist`` preserves the exact float values, so behaviour is
        # bit-identical to reading the matrix.
        self._delay_rows: list[list[float]] = self.delays.tolist()
        n = self.num_nodes
        self._mean_delay: float = (
            float(self.delays.sum() / (n * (n - 1))) if n >= 2 else 0.0
        )

    # -- construction -------------------------------------------------------

    def _place(self, rng: np.random.Generator, num_clusters: int) -> np.ndarray:
        n = self.num_nodes
        if self.kind is TopologyKind.UNIFORM:
            return rng.uniform(0.0, 1.0, size=(n, 2))
        if self.kind is TopologyKind.GRID:
            side = int(math.ceil(math.sqrt(n)))
            xs, ys = np.meshgrid(np.linspace(0, 1, side), np.linspace(0, 1, side))
            return np.column_stack([xs.ravel(), ys.ravel()])[:n]
        if self.kind is TopologyKind.RING:
            theta = 2.0 * np.pi * np.arange(n) / n
            return 0.5 + 0.5 * np.column_stack([np.cos(theta), np.sin(theta)])
        if self.kind is TopologyKind.CLUSTERED:
            heads = rng.uniform(0.1, 0.9, size=(max(1, num_clusters), 2))
            assignment = rng.integers(0, len(heads), size=n)
            jitter = rng.normal(0.0, 0.04, size=(n, 2))
            return np.clip(heads[assignment] + jitter, 0.0, 1.0)
        raise AssertionError(f"unhandled kind {self.kind}")

    def _delay_matrix(self) -> np.ndarray:
        pos = self.positions
        diff = pos[:, None, :] - pos[None, :, :]
        dist = np.sqrt((diff**2).sum(axis=-1))
        peak = dist.max()
        if peak <= 0.0:  # single node or all co-located
            scaled = np.zeros_like(dist)
        else:
            scaled = dist / peak
        delays = self.min_delay + scaled * (self.max_delay - self.min_delay)
        np.fill_diagonal(delays, 0.0)
        return delays

    # -- queries -------------------------------------------------------------

    def delay(self, src: int, dst: int) -> float:
        """One-way link delay between ``src`` and ``dst`` (0 for src==dst)."""
        return self._delay_rows[src][dst]

    def bandwidth_of(self, src: int, dst: int) -> float:
        """Link bandwidth in bytes/second between ``src`` and ``dst``.

        The link structure mirrors :meth:`delay`: static and symmetric.
        Today every link shares one configured baseline (the payload
        plane's ``PayloadConfig.bandwidth``); the per-link signature is
        the extension point for heterogeneous fabrics.  Raises if no
        bandwidth was configured (payload plane off).
        """
        if self.link_bandwidth is None:
            raise ValueError("topology has no bandwidth configured")
        return self.link_bandwidth

    def distance(self, src: int, dst: int) -> float:
        """Metric distance d(n_src, n_dst)."""
        return float(np.linalg.norm(self.positions[src] - self.positions[dst]))

    def mean_delay(self) -> float:
        """Average off-diagonal delay (0 for a single node).

        Memoised at construction: the proxy's holder-remaining estimate
        reads this once per conflict, and delays are static (§IV-A).
        """
        return self._mean_delay

    def nearest_nodes(self, src: int, k: int) -> list[int]:
        """The ``k`` nodes with smallest delay from ``src`` (excluding src)."""
        order = np.argsort(self.delays[src], kind="stable")
        return [int(i) for i in order if i != src][:k]

    def to_graph(self) -> nx.Graph:
        """A complete weighted graph view (weights = delays), for analysis."""
        g = nx.Graph()
        for i in range(self.num_nodes):
            g.add_node(i, pos=tuple(self.positions[i]))
        for i in range(self.num_nodes):
            for j in range(i + 1, self.num_nodes):
                g.add_edge(i, j, weight=self.delay(i, j))
        return g

    def verify_metric(self, atol: float = 1e-9) -> bool:
        """Check symmetry + triangle inequality of the *distance* metric.

        (The affine delay map adds ``min_delay`` to every hop, so delays
        themselves satisfy the triangle inequality a fortiori.)
        """
        pos = self.positions
        diff = pos[:, None, :] - pos[None, :, :]
        d = np.sqrt((diff**2).sum(axis=-1))
        if not np.allclose(d, d.T, atol=atol):
            return False
        # d[i,k] <= d[i,j] + d[j,k] for all i,j,k (vectorised).
        lhs = d[:, None, :]
        rhs = d[:, :, None] + d[None, :, :]
        return bool(np.all(lhs <= rhs + atol))

    def __repr__(self) -> str:
        return (
            f"<Topology {self.kind.value} n={self.num_nodes} "
            f"delay=[{self.min_delay * 1e3:.0f}ms, {self.max_delay * 1e3:.0f}ms]>"
        )
