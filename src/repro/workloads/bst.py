"""Binary Search Tree set (§IV-A microbenchmark).

An (unbalanced) BST over a fixed key space; every key has a pre-allocated
node object ``bst/node{k}`` holding ``(present, left, right)`` where
left/right are child keys or None, plus a root pointer object
``bst/root``.  Lookups descend from the root (O(depth) reads); inserts
attach a leaf (one pointer write); deletes implement the full textbook
algorithm including the two-children case (splice in the in-order
successor), so structural conflicts around rotated/spliced regions are
real.

Write transactions nest *locate* (traversal) and *mutate* (pointer
surgery) children, like the linked list.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Tuple

import numpy as np

from repro.core.cluster import Cluster
from repro.workloads.base import Op, Workload

__all__ = ["BstWorkload"]

#: node value: (present, left_key, right_key)
NodeVal = Tuple[bool, Optional[int], Optional[int]]


def _node_oid(prefix: str, key: int) -> str:
    return f"{prefix}/node{key}"


def _descend(tx, prefix: str, key: int) -> Generator[Any, Any, Tuple[List[int], bool]]:
    """Walk from the root toward ``key``.

    Returns ``(path, found)``: ``path`` is the list of visited keys (last
    element is ``key`` itself when found, else the would-be parent leaf).
    """
    path: List[int] = []
    curr: Optional[int] = yield from tx.read(f"{prefix}/root")
    while curr is not None:
        path.append(curr)
        if curr == key:
            present, _l, _r = yield from tx.read(_node_oid(prefix, curr))
            return path, bool(present)
        _present, left, right = yield from tx.read(_node_oid(prefix, curr))
        curr = left if key < curr else right
    return path, False


def bst_contains(tx, prefix: str, key: int) -> Generator[Any, Any, bool]:
    _path, found = yield from _descend(tx, prefix, key)
    return found


def _attach(tx, prefix: str, key: int, parent: Optional[int]) -> Generator[Any, Any, None]:
    yield from tx.write(_node_oid(prefix, key), (True, None, None))
    if parent is None:
        yield from tx.write(f"{prefix}/root", key)
        return
    present, left, right = yield from tx.read(_node_oid(prefix, parent))
    if key < parent:
        yield from tx.write(_node_oid(prefix, parent), (present, key, right))
    else:
        yield from tx.write(_node_oid(prefix, parent), (present, left, key))


def bst_add(tx, prefix: str, key: int) -> Generator[Any, Any, bool]:
    path, found = yield from tx.nested(_descend, prefix, key, profile="bst.locate")
    if found:
        return False
    if path and path[-1] == key:
        # Tombstoned node still wired into the tree: revive in place.
        def _revive(tx2):
            _p, left, right = yield from tx2.read(_node_oid(prefix, key))
            yield from tx2.write(_node_oid(prefix, key), (True, left, right))
        yield from tx.nested(_revive, profile="bst.mutate")
        return True
    parent = path[-1] if path else None
    yield from tx.nested(_attach, prefix, key, parent, profile="bst.mutate")
    return True


def _splice_out(tx, prefix: str, key: int, parent: Optional[int]) -> Generator[Any, Any, None]:
    """Textbook BST delete of ``key`` whose parent is ``parent``."""
    _present, left, right = yield from tx.read(_node_oid(prefix, key))

    if left is not None and right is not None:
        # Two children: tombstone in place.  Classic pointer-based BSTs
        # move the in-order successor node; with key-addressed objects
        # (node identity == key) that would change a node's key, so the
        # standard STM-set formulation keeps the node wired and marks it
        # absent.  bst_add revives tombstones in place.
        yield from tx.write(_node_oid(prefix, key), (False, left, right))
        return

    # Zero or one child: splice the child into the parent link.
    child = left if left is not None else right
    if parent is None:
        yield from tx.write(f"{prefix}/root", child)
    else:
        p_present, p_left, p_right = yield from tx.read(_node_oid(prefix, parent))
        if p_left == key:
            yield from tx.write(_node_oid(prefix, parent), (p_present, child, p_right))
        else:
            yield from tx.write(_node_oid(prefix, parent), (p_present, p_left, child))
    # Reset the detached node for future re-insertion.
    yield from tx.write(_node_oid(prefix, key), (False, None, None))


def bst_remove(tx, prefix: str, key: int) -> Generator[Any, Any, bool]:
    path, found = yield from tx.nested(_descend, prefix, key, profile="bst.locate")
    if not found:
        return False
    parent = path[-2] if len(path) >= 2 else None
    yield from tx.nested(_splice_out, prefix, key, parent, profile="bst.mutate")
    return True


class BstWorkload(Workload):
    """Unbalanced BST set over a fixed key space."""

    name = "bst"

    def __init__(
        self,
        read_fraction: float = 0.9,
        key_space: int = 64,
        initial_fill: float = 0.5,
        payload_size: Optional[int] = None,
    ) -> None:
        super().__init__(read_fraction, payload_size=payload_size)
        if key_space < 2:
            raise ValueError("need key_space >= 2")
        self.key_space = key_space
        self.initial_fill = initial_fill
        self.prefix = "bst"

    def create_objects(self, cluster: Cluster, rng: np.random.Generator) -> None:
        members = [
            int(k) for k in rng.choice(
                self.key_space,
                size=max(1, int(self.key_space * self.initial_fill)),
                replace=False,
            )
        ]
        # Build the tree shape in plain Python, then materialise objects.
        vals: dict[int, List[Optional[int]]] = {}
        root: Optional[int] = None
        for k in members:
            if root is None:
                root = k
                vals[k] = [None, None]
                continue
            curr = root
            while True:
                left, right = vals[curr]
                if k < curr:
                    if left is None:
                        vals[curr][0] = k
                        vals[k] = [None, None]
                        break
                    curr = left
                else:
                    if right is None:
                        vals[curr][1] = k
                        vals[k] = [None, None]
                        break
                    curr = right
        cluster.alloc(f"{self.prefix}/root", root)
        member_set = set(members)
        for k in range(self.key_space):
            if k in member_set:
                left, right = vals[k]
                cluster.alloc(_node_oid(self.prefix, k), (True, left, right))
            else:
                cluster.alloc(_node_oid(self.prefix, k), (False, None, None))

    # ------------------------------------------------------------------

    def _key(self, rng: np.random.Generator) -> int:
        return self.pick_key(rng, self.key_space)

    def make_write_op(self, node: int, rng: np.random.Generator) -> Op:
        key = self._key(rng)
        if rng.random() < 0.5:
            return Op(bst_add, (self.prefix, key), "bst.add", is_read=False)
        return Op(bst_remove, (self.prefix, key), "bst.remove", is_read=False)

    def make_read_op(self, node: int, rng: np.random.Generator) -> Op:
        return Op(bst_contains, (self.prefix, self._key(rng)), "bst.contains", is_read=True)
