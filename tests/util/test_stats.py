"""Unit and property tests for online estimators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util import Ewma, OnlineQuantile


class TestEwma:
    def test_invalid_alpha(self):
        for alpha in (0.0, -1.0, 1.5):
            with pytest.raises(ValueError):
                Ewma(alpha=alpha)

    def test_no_data_no_initial_raises(self):
        with pytest.raises(ValueError):
            Ewma().value

    def test_initial_fallback(self):
        e = Ewma(initial=5.0)
        assert e.available
        assert e.value == 5.0

    def test_first_observation_sets_mean(self):
        e = Ewma(alpha=0.5)
        e.observe(10.0)
        assert e.value == 10.0
        assert e.stdev == 0.0

    def test_converges_to_constant(self):
        e = Ewma(alpha=0.3)
        for _ in range(100):
            e.observe(7.0)
        assert e.value == pytest.approx(7.0)
        assert e.stdev == pytest.approx(0.0, abs=1e-9)

    def test_tracks_level_shift(self):
        e = Ewma(alpha=0.5)
        for _ in range(20):
            e.observe(0.0)
        for _ in range(20):
            e.observe(100.0)
        assert e.value > 99.0

    def test_alpha_one_is_last_value(self):
        e = Ewma(alpha=1.0)
        e.observe(3.0)
        e.observe(9.0)
        assert e.value == 9.0

    def test_hand_computed_sequence(self):
        e = Ewma(alpha=0.25)
        e.observe(4.0)   # mean = 4
        e.observe(8.0)   # mean = 4 + .25*4 = 5
        assert e.value == pytest.approx(5.0)

    @given(st.lists(st.floats(min_value=-1e3, max_value=1e3,
                              allow_nan=False), min_size=1, max_size=100),
           st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_stays_within_observed_range(self, data, alpha):
        e = Ewma(alpha=alpha)
        for x in data:
            e.observe(x)
        assert min(data) - 1e-9 <= e.value <= max(data) + 1e-9


class TestOnlineQuantile:
    def test_invalid_q(self):
        for q in (0.0, 1.0, -0.1):
            with pytest.raises(ValueError):
                OnlineQuantile(q)

    def test_no_data_raises(self):
        with pytest.raises(ValueError):
            OnlineQuantile(0.5).value

    def test_small_samples_exact(self):
        oq = OnlineQuantile(0.5)
        for x in [1.0, 9.0, 5.0]:
            oq.observe(x)
        assert oq.value == 5.0

    @pytest.mark.parametrize("q", [0.1, 0.5, 0.9, 0.99])
    def test_converges_on_uniform(self, q):
        rng = np.random.default_rng(7)
        data = rng.uniform(0, 1, size=5000)
        oq = OnlineQuantile(q)
        for x in data:
            oq.observe(x)
        assert oq.value == pytest.approx(np.quantile(data, q), abs=0.05)

    def test_converges_on_exponential(self):
        rng = np.random.default_rng(11)
        data = rng.exponential(2.0, size=5000)
        oq = OnlineQuantile(0.5)
        for x in data:
            oq.observe(x)
        assert oq.value == pytest.approx(np.quantile(data, 0.5), rel=0.15)

    @given(st.lists(st.floats(min_value=-1e4, max_value=1e4,
                              allow_nan=False), min_size=6, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_estimate_within_data_range(self, data):
        oq = OnlineQuantile(0.5)
        for x in data:
            oq.observe(x)
        assert min(data) - 1e-9 <= oq.value <= max(data) + 1e-9

    def test_repr(self):
        oq = OnlineQuantile(0.9)
        assert "n/a" in repr(oq)
        oq.observe(1.0)
        assert "0.9" in repr(oq)
