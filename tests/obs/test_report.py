"""Tests for the run-report CLI (python -m repro.obs.report)."""

import json

import pytest

from repro.core.config import ClusterConfig, ObsConfig
from repro.core.experiment import run_experiment
from repro.obs.report import load_events, main, render, summarize
from repro.obs.events import SchemaError


@pytest.fixture(scope="module")
def run_log(tmp_path_factory):
    """One faulted traced run shared by every report test."""
    path = tmp_path_factory.mktemp("obs") / "run.jsonl"
    cfg = ClusterConfig(
        num_nodes=4, seed=11,
        obs=ObsConfig(enabled=True, jsonl_path=str(path)),
        faults=dict(enabled=True, drop_rate=0.02, crash_rate=0.05),
    )
    result = run_experiment("bank", cfg, horizon=3.0)
    assert result.commits > 0
    return path


class TestSummarize:
    def test_summary_shape(self, run_log):
        summary = summarize(load_events(str(run_log)), validate=True)
        assert summary["events"] > 0 and summary["spans"] > 0
        assert summary["nodes"] and summary["phases"]
        commits = sum(r["commits"] for r in summary["nodes"])
        assert commits > 0
        assert "span.commit" in summary["phases"]
        row = summary["phases"]["span.commit"]
        assert row["p50"] <= row["p95"] <= row["p99"]
        assert summary["faults"], "fault regime must leave a timeline"

    def test_render_sections(self, run_log):
        summary = summarize(load_events(str(run_log)))
        text = render(summary)
        for section in ("## per-node", "## top contended objects",
                        "## span phases (ms)", "## scheduler decisions",
                        "## fault timeline"):
            assert section in text, f"missing {section}"

    def test_bad_json_line_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"t": 1.0, "cat": "x", "sub": "y"}\nnot json\n')
        with pytest.raises(SchemaError):
            list(load_events(str(path)))


@pytest.fixture(scope="module")
def serving_log(tmp_path_factory):
    """One open-loop traced run: traffic.* events feed the report."""
    from repro.core.config import ArrivalConfig

    path = tmp_path_factory.mktemp("obs") / "serving.jsonl"
    cfg = ClusterConfig(
        num_nodes=4, seed=7,
        obs=ObsConfig(enabled=True, jsonl_path=str(path)),
        arrival=ArrivalConfig(enabled=True, rate=20.0,
                              scenario="flash-crowd"),
    )
    result = run_experiment("bank", cfg, read_fraction=0.5,
                            workers_per_node=2, horizon=4.0)
    assert result.extra["offered"] > 0
    return path


class TestOpenLoopSection:
    def test_closed_loop_report_has_no_traffic_section(self, run_log):
        summary = summarize(load_events(str(run_log)))
        assert "traffic" not in summary
        assert "## open-loop traffic" not in render(summary)

    def test_traffic_section_renders(self, serving_log):
        summary = summarize(load_events(str(serving_log)), validate=True)
        traffic = summary["traffic"]
        assert traffic["offered"] == traffic["admitted"] + traffic["shed"]
        text = render(summary)
        assert "## open-loop traffic" in text
        assert "offered" in text and "phases" in text

    def test_render_is_byte_deterministic(self, serving_log):
        """Two independent load->summarize->render passes over the same
        log must produce identical bytes (tables, the traffic section,
        and the repro.prof anatomy/wasted sections included) — the
        contract that makes reports diffable."""
        first = render(summarize(load_events(str(serving_log))))
        assert "## latency anatomy" in first
        assert "## wasted work" in first
        second = render(summarize(load_events(str(serving_log))))
        assert first.encode() == second.encode()


class TestProfSections:
    def test_open_loop_summary_carries_anatomy_and_wasted(self, serving_log):
        summary = summarize(load_events(str(serving_log)))
        anatomy = summary["anatomy"]
        assert anatomy["roots"] > 0
        assert anatomy["max_residual"] < 1e-9
        # open-loop linkage: traffic.dispatch stamps arrival times, so
        # some chains accrue admission wait
        text = render(summary)
        assert "## latency anatomy (committed roots)" in text
        for segment in ("admission", "queue", "network", "commit"):
            assert segment in text
        assert "## wasted work" in text
        assert "parent-caused cascade" in text

    def test_closed_loop_summary_has_anatomy_without_admission(self, run_log):
        """Closed-loop logs have spans but no traffic.dispatch events:
        chains are still decomposed, with a zero admission segment."""
        summary = summarize(load_events(str(run_log)))
        assert "traffic" not in summary
        anatomy = summary["anatomy"]
        assert anatomy["roots"] > 0
        assert anatomy["segments"]["admission"]["total"] == 0.0

    def test_spanless_log_keeps_old_summary_shape(self, tmp_path):
        path = tmp_path / "thin.jsonl"
        path.write_text(
            '{"t": 0.5, "cat": "tx.commit", "sub": "x", "node": "n0"}\n'
        )
        summary = summarize(load_events(str(path)))
        assert "anatomy" not in summary and "wasted" not in summary
        text = render(summary)
        assert "## latency anatomy" not in text
        assert "## wasted work" not in text


class TestCli:
    def test_main_renders_tables(self, run_log, capsys):
        assert main([str(run_log), "--validate"]) == 0
        out = capsys.readouterr().out
        assert "## per-node" in out and "## scheduler decisions" in out

    def test_main_json_mode(self, run_log, capsys):
        assert main([str(run_log), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["events"] > 0

    def test_main_chrome_reexport(self, run_log, tmp_path, capsys):
        out_path = tmp_path / "re.trace.json"
        assert main([str(run_log), "--chrome", str(out_path)]) == 0
        doc = json.loads(out_path.read_text())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])

    def test_main_schema_error_exit_code(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"cat": "x", "sub": "y"}\n')  # missing t
        assert main([str(path), "--validate"]) == 1
        assert "schema error" in capsys.readouterr().err

    def test_max_fault_lines_flag(self, run_log, capsys):
        """The fault-timeline cutoff is a flag, not a constant: a tight
        limit truncates with an accounting note, a loose one shows all."""
        summary = summarize(load_events(str(run_log)))
        n_faults = len(summary["faults"])
        assert n_faults > 2, "fixture must produce a fault timeline"

        assert main([str(run_log), "--max-fault-lines", "2"]) == 0
        tight = capsys.readouterr().out
        shown = [l for l in tight.splitlines() if "fault." in l]
        assert len(shown) == 2
        assert f"... {n_faults - 2 + summary['faults_dropped']} more" in tight

        assert main([str(run_log), "--max-fault-lines", str(n_faults)]) == 0
        loose = capsys.readouterr().out
        shown = [l for l in loose.splitlines() if "fault." in l]
        assert len(shown) == n_faults

    def test_module_entrypoint(self, run_log):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro.obs.report", str(run_log), "--top", "3"],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stderr
        assert "## per-node" in proc.stdout
