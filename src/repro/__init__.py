"""repro — reproduction of Kim & Ravindran, "Scheduling Closed-Nested
Transactions in Distributed Transactional Memory" (IPDPS 2012).

The package implements, from scratch and on top of a deterministic
discrete-event simulator:

* the Herlihy–Sun dataflow D-STM model (objects migrate to immobile
  transactions) with a directory-based cache-coherence protocol,
* the Transactional Forwarding Algorithm (TFA) with asynchronous node
  clocks, early validation, and a commit-time validation window,
* closed-nested (and flat-nested) transactions,
* the paper's contribution — the Reactive Transactional Scheduler (RTS) —
  alongside the TFA and TFA+Backoff baselines,
* the six evaluation benchmarks (Bank, Vacation, Linked-List, BST,
  Red/Black-Tree, DHT), and
* a harness regenerating every table and figure of the paper's evaluation.

Quickstart::

    from repro import Cluster, SchedulerKind

    cluster = Cluster(num_nodes=8, seed=42, scheduler=SchedulerKind.RTS)
    accounts = [cluster.alloc(f"acct{i}", 100) for i in range(16)]

    def transfer(tx, src, dst, amount):
        a = yield from tx.read(src)
        yield from tx.write(src, a - amount)
        b = yield from tx.read(dst)
        yield from tx.write(dst, b + amount)

    result = cluster.run_transaction(transfer, accounts[0], accounts[1], 25,
                                     node=0)
"""

from repro._version import __version__

__all__ = [
    "Cluster",
    "ClusterConfig",
    "SchedulerKind",
    "TransactionAborted",
    "__version__",
]

_LAZY = {
    "Cluster": ("repro.core.api", "Cluster"),
    "SchedulerKind": ("repro.core.api", "SchedulerKind"),
    "ClusterConfig": ("repro.core.config", "ClusterConfig"),
    "TransactionAborted": ("repro.dstm.errors", "TransactionAborted"),
}


def __getattr__(name: str):
    """Lazy re-exports: keep ``import repro`` cheap and cycle-free."""
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value
    return value
