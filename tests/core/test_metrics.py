"""Unit tests for the metrics collector."""

import pytest

from repro.core.metrics import MetricsCollector
from repro.dstm.errors import AbortReason
from repro.dstm.transaction import Transaction


def tree(children=2, committed=True):
    root = Transaction(node=0)
    kids = [Transaction(node=0, parent=root) for _ in range(children)]
    if committed:
        for k in kids:
            k.merge_into_parent()
    return root, kids


class TestCommitAccounting:
    def test_commit_counts_and_latency(self):
        m = MetricsCollector()
        root, _ = tree()
        m.on_commit(root, duration=0.5)
        assert m.commits.value == 1
        assert m.commit_latency.mean == 0.5
        assert m.per_profile_commits[root.profile] == 1

    def test_nested_commits_counted(self):
        m = MetricsCollector()
        root, kids = tree(children=3)
        m.on_commit(root, 0.1)
        assert m.nested_commits.value == 3

    def test_deep_descendants_counted(self):
        m = MetricsCollector()
        root = Transaction(node=0)
        child = Transaction(node=0, parent=root)
        Transaction(node=0, parent=child).merge_into_parent()
        child.merge_into_parent()
        m.on_commit(root, 0.1)
        assert m.nested_commits.value == 2


class TestAbortAccounting:
    def test_root_abort_kills_children_as_parent_cause(self):
        m = MetricsCollector()
        root, kids = tree(children=2)
        killed = root.mark_aborted()
        m.on_abort(root, AbortReason.BUSY_OBJECT, killed)
        assert m.root_aborts.value == 1
        assert m.nested_aborts_parent.value == 2
        assert m.nested_aborts_own.value == 0
        assert m.aborts_by_reason[AbortReason.BUSY_OBJECT] == 1

    def test_nested_self_abort_is_own_cause(self):
        m = MetricsCollector()
        root = Transaction(node=0)
        child = Transaction(node=0, parent=root)
        killed = child.mark_aborted()
        m.on_abort(child, AbortReason.EARLY_VALIDATION, killed)
        assert m.root_aborts.value == 0
        assert m.nested_aborts_own.value == 1
        assert m.nested_aborts_parent.value == 0

    def test_nested_abort_with_descendants(self):
        m = MetricsCollector()
        root = Transaction(node=0)
        child = Transaction(node=0, parent=root)
        Transaction(node=0, parent=child).merge_into_parent()
        killed = child.mark_aborted()
        m.on_abort(child, AbortReason.EARLY_VALIDATION, killed)
        assert m.nested_aborts_own.value == 1
        assert m.nested_aborts_parent.value == 1  # the grandchild


class TestDerivedQuantities:
    def test_nested_abort_rate(self):
        m = MetricsCollector()
        m.nested_aborts_own.increment(3)
        m.nested_aborts_parent.increment(7)
        assert m.nested_abort_rate() == pytest.approx(0.7)

    def test_nested_abort_rate_empty(self):
        assert MetricsCollector().nested_abort_rate() == 0.0

    def test_abort_ratio(self):
        m = MetricsCollector()
        root, _ = tree()
        m.on_commit(root, 0.1)
        other = Transaction(node=0)
        m.on_abort(other, AbortReason.BUSY_OBJECT, other.mark_aborted())
        assert m.abort_ratio() == pytest.approx(0.5)

    def test_throughput_window(self):
        m = MetricsCollector()
        m.window_start, m.window_end = 2.0, 12.0
        root, _ = tree()
        m.on_commit(root, 0.1)
        assert m.throughput() == pytest.approx(0.1)
        assert m.throughput(elapsed=5.0) == pytest.approx(0.2)

    def test_summary_keys(self):
        summary = MetricsCollector().summary()
        for key in ("commits", "abort_ratio", "nested_abort_rate"):
            assert key in summary

    def test_summary_omits_optional_keys_by_default(self):
        summary = MetricsCollector().summary()
        assert "throughput" not in summary
        assert "commit_latency_p50" not in summary

    def test_summary_throughput_with_window(self):
        m = MetricsCollector()
        m.window_start, m.window_end = 0.0, 4.0
        root, _ = tree()
        m.on_commit(root, 0.1)
        assert m.summary()["throughput"] == pytest.approx(0.25)

    def test_summary_percentiles_with_samples(self):
        m = MetricsCollector(keep_latency_samples=True)
        for d in (0.1, 0.2, 0.3, 0.4, 1.0):
            root, _ = tree()
            m.on_commit(root, d)
        s = m.summary()
        assert s["commit_latency_p50"] == pytest.approx(0.3)
        assert s["commit_latency_p95"] <= 1.0
        assert s["commit_latency_p99"] <= 1.0
        assert s["commit_latency_p50"] <= s["commit_latency_p95"] <= s["commit_latency_p99"]

    def test_summary_percentiles_absent_without_samples(self):
        m = MetricsCollector()  # keep_latency_samples=False
        root, _ = tree()
        m.on_commit(root, 0.5)
        assert "commit_latency_p50" not in m.summary()
