#!/usr/bin/env python3
"""Scheduler shoot-out: RTS vs TFA vs TFA+Backoff on one workload.

Reproduces one cell of the paper's evaluation interactively: pick a
benchmark and contention level, run all three schedulers on identical
seeds, and print the comparison (throughput, aborts, Table-I rate).

Run:  python examples/scheduler_shootout.py [benchmark] [low|high]
      e.g. python examples/scheduler_shootout.py vacation high
"""

import sys

from repro import ClusterConfig, SchedulerKind
from repro.analysis.render import render_table
from repro.core.experiment import run_experiment


def main():
    bench = sys.argv[1] if len(sys.argv) > 1 else "bank"
    contention = sys.argv[2] if len(sys.argv) > 2 else "high"
    read_fraction = {"low": 0.9, "high": 0.1}[contention]

    rows = []
    for sched in (SchedulerKind.RTS, SchedulerKind.TFA,
                  SchedulerKind.TFA_BACKOFF):
        config = ClusterConfig(num_nodes=16, seed=3, scheduler=sched,
                               cl_threshold=4)
        res = run_experiment(bench, config, read_fraction=read_fraction,
                             workers_per_node=2, horizon=15.0)
        rows.append({
            "scheduler": sched.value,
            "throughput (tx/s)": round(res.throughput, 1),
            "root aborts": res.root_aborts,
            "abort ratio": f"{res.abort_ratio:.1%}",
            "nested abort rate": f"{res.nested_abort_rate:.1%}",
            "messages": res.messages_sent,
        })

    title = (f"{bench} @ {contention} contention "
             f"({int(read_fraction * 100)}% reads), 16 nodes, seed 3")
    print(render_table(rows, title=title))

    rts = rows[0]["throughput (tx/s)"]
    tfa = rows[1]["throughput (tx/s)"]
    if tfa:
        print(f"\nRTS speedup over TFA: {rts / tfa:.2f}x "
              f"(paper reports up to 1.53x low / 1.88x high)")


if __name__ == "__main__":
    main()
