"""The serializability oracle (`repro.check.oracle`): a committed
history either admits a fence-consistent serial order or it names the
exact way it fails."""

from repro.check.oracle import CommitRecord, check_history


def _rec(txid, serialized_at, reads=(), writes=(), node=0):
    return CommitRecord(
        txid=txid, node=node, serialized_at=serialized_at,
        reads=tuple(reads), writes=tuple(writes),
    )


def _kinds(violations):
    return sorted(v.kind for v in violations)


def test_empty_and_single_commit_histories_pass():
    assert check_history([]) == []
    one = _rec("t1", 1.0, reads=[("x", 0, 7)], writes=[("x", 1, 8)])
    assert check_history([one], initial={"x": 7}) == []


def test_clean_chain_of_committers_passes():
    history = [
        _rec("t1", 1.0, reads=[("x", 0, 0)], writes=[("x", 1, 10)]),
        _rec("t2", 2.0, reads=[("x", 1, 10)], writes=[("x", 2, 20)]),
        _rec("t3", 3.0, reads=[("x", 2, 20)], writes=[("x", 3, 30)]),
    ]
    assert check_history(history, initial={"x": 0}) == []


def test_duplicate_fence_is_flagged():
    history = [
        _rec("t1", 1.0, writes=[("x", 1, 10)]),
        _rec("t2", 2.0, writes=[("x", 1, 11)]),
    ]
    assert "duplicate-fence" in _kinds(check_history(history))


def test_version_gap_is_a_phantom():
    history = [_rec("t1", 1.0, writes=[("x", 2, 10)])]
    assert "phantom-version" in _kinds(check_history(history))


def test_read_of_never_committed_version_is_a_phantom():
    history = [
        _rec("t1", 1.0, writes=[("x", 1, 10)]),
        _rec("t2", 2.0, reads=[("x", 3, 99)]),
    ]
    assert "phantom-version" in _kinds(check_history(history))


def test_stale_read_value_against_the_fence_writer():
    history = [
        _rec("t1", 1.0, writes=[("x", 1, 10)]),
        _rec("t2", 2.0, reads=[("x", 1, 999)]),
    ]
    assert "stale-read-value" in _kinds(check_history(history))


def test_stale_read_of_the_initial_value():
    history = [_rec("t1", 1.0, reads=[("x", 0, 42)])]
    assert "stale-read-value" in _kinds(check_history(history, initial={"x": 0}))
    # Without a declared initial state, v0 reads are not value-checked.
    assert check_history(history) == []


def test_write_skew_shows_up_as_a_precedence_cycle():
    # Classic write skew: each transaction reads the version the *other*
    # one overwrites, so rw anti-dependencies point both ways.
    history = [
        _rec("t1", 1.0, reads=[("y", 0, 0)], writes=[("x", 1, 1)]),
        _rec("t2", 1.0, reads=[("x", 0, 0)], writes=[("y", 1, 1)]),
    ]
    assert "precedence-cycle" in _kinds(check_history(history, initial={"x": 0, "y": 0}))


def test_fence_order_violation_when_serialization_times_disagree():
    # t2 reads t1's write but claims an *earlier* serialization instant.
    history = [
        _rec("t1", 5.0, writes=[("x", 1, 10)]),
        _rec("t2", 1.0, reads=[("x", 1, 10)]),
    ]
    assert "fence-order" in _kinds(check_history(history))


def test_from_dict_round_trip():
    payload = {
        "txid": "task-n0-1", "task_id": "task-n0-1", "node": 0,
        "serialized_at": 1.5,
        "reads": [("x", 0, 7)], "writes": [("x", 1, 8)],
    }
    rec = CommitRecord.from_dict(payload)
    assert rec.txid == "task-n0-1"
    assert rec.reads == (("x", 0, 7),)
    assert rec.writes == (("x", 1, 8),)
    assert check_history([rec], initial={"x": 7}) == []
