"""Serializability oracle over a committed history (``mc-serializable``).

The explorer (:mod:`repro.check.explore`) collects one
:class:`CommitRecord` per committed root transaction through the TFA
engine's ``commit_observer`` hook: the version anchors the commit
validated (its read set) and the versions it installed (its write set).
This module decides, offline and purely combinatorially, whether that
history admits a serial order consistent with the version fences:

* **unique fences** — exactly one committed writer installs each
  ``(oid, version)``; two writers on one fence means two commits won the
  same validation window (the write-skew TFA's registration step closes);
* **value coherence** — every read of ``(oid, v)`` observed the value the
  unique writer of ``v`` installed (or the initial value for ``v = 0``);
* **acyclic precedence** — the classic multiversion serialization graph
  (write→read, write→write along the version chain, and read→next-write
  anti-dependencies) must be acyclic;
* **fence order** — commit serialization instants (``serialized_at``)
  must embed into that precedence order: the version chain is the serial
  order TFA claims, so a precedence edge pointing backwards in
  serialization time is a violation even without a full cycle.

The oracle is deliberately engine-agnostic: it sees only the records, so
a future scheduler (the ROADMAP's zoo) is checked by the same code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = ["CommitRecord", "OracleViolation", "check_history", "INITIAL_WRITER"]

#: pseudo-transaction that "wrote" every object's version-0 initial value
INITIAL_WRITER = "<initial>"


@dataclass(frozen=True)
class CommitRecord:
    """One committed root transaction's footprint."""

    txid: str
    node: int
    serialized_at: float
    #: (oid, version anchor, value observed) per read, sorted by oid
    reads: Tuple[Tuple[str, int, Any], ...]
    #: (oid, version installed, value installed) per write, sorted by oid
    writes: Tuple[Tuple[str, int, Any], ...]

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "CommitRecord":
        """Build from the TFA engine's ``commit_observer`` payload."""
        return cls(
            txid=str(record["txid"]),
            node=int(record["node"]),
            serialized_at=float(record["serialized_at"]),
            reads=tuple((str(o), int(v), val) for o, v, val in record["reads"]),
            writes=tuple((str(o), int(v), val) for o, v, val in record["writes"]),
        )


@dataclass(frozen=True)
class OracleViolation:
    """One way the committed history fails to serialize."""

    #: always ``mc-serializable`` today (the rule registry id)
    rule: str
    #: machine-readable failure shape: ``duplicate-fence``,
    #: ``phantom-version``, ``stale-read-value``, ``fence-order`` or
    #: ``precedence-cycle``
    kind: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.rule}/{self.kind}] {self.detail}"


def check_history(
    records: Sequence[CommitRecord],
    initial: Optional[Mapping[str, Any]] = None,
) -> List[OracleViolation]:
    """Check a committed history; returns all violations found ([] = ok).

    ``initial`` maps oid -> bootstrap value (the version-0 state); reads
    at version 0 are only value-checked when it is provided.
    """
    violations: List[OracleViolation] = []

    # -- unique fences + the per-object version chain -------------------------
    writer_of: Dict[Tuple[str, int], CommitRecord] = {}
    written_value: Dict[Tuple[str, int], Any] = {}
    for rec in records:
        for oid, version, value in rec.writes:
            fence = (oid, version)
            prev = writer_of.get(fence)
            if prev is not None:
                violations.append(OracleViolation(
                    "mc-serializable", "duplicate-fence",
                    f"{oid} v{version} installed by both {prev.txid} "
                    f"and {rec.txid}",
                ))
                continue
            writer_of[fence] = rec
            written_value[fence] = value

    versions_of: Dict[str, List[int]] = {}
    for oid, version in writer_of:
        versions_of.setdefault(oid, []).append(version)
    for oid in sorted(versions_of):
        chain = sorted(versions_of[oid])
        expected = list(range(1, len(chain) + 1))
        if chain != expected:
            violations.append(OracleViolation(
                "mc-serializable", "phantom-version",
                f"{oid} committed versions {chain} are not the "
                f"contiguous chain {expected}",
            ))

    # -- value coherence ------------------------------------------------------
    for rec in records:
        for oid, version, value in rec.reads:
            if version == 0:
                if initial is not None and oid in initial and value != initial[oid]:
                    violations.append(OracleViolation(
                        "mc-serializable", "stale-read-value",
                        f"{rec.txid} read {oid} v0 = {value!r}, "
                        f"initial value is {initial[oid]!r}",
                    ))
                continue
            fence = (oid, version)
            if fence not in writer_of:
                violations.append(OracleViolation(
                    "mc-serializable", "phantom-version",
                    f"{rec.txid} read {oid} v{version}, which no "
                    f"committed transaction installed",
                ))
            elif value != written_value[fence]:
                violations.append(OracleViolation(
                    "mc-serializable", "stale-read-value",
                    f"{rec.txid} read {oid} v{version} = {value!r}, "
                    f"writer {writer_of[fence].txid} installed "
                    f"{written_value[fence]!r}",
                ))

    # -- precedence graph -----------------------------------------------------
    # Nodes are txids (plus the pseudo initial writer); edges are the
    # multiversion serialization dependencies.  Built in record order so
    # the graph — and any reported cycle — is deterministic.
    serialized_at: Dict[str, float] = {rec.txid: rec.serialized_at for rec in records}
    edges: Dict[str, List[str]] = {INITIAL_WRITER: []}
    for rec in records:
        edges.setdefault(rec.txid, [])

    def add_edge(src: str, dst: str, why: str) -> None:
        if src == dst or dst in edges[src]:
            return
        edges[src].append(dst)
        s, d = serialized_at.get(src), serialized_at.get(dst)
        if s is not None and d is not None and s > d:
            violations.append(OracleViolation(
                "mc-serializable", "fence-order",
                f"{why}: {src} (serialized {s:.6f}) must precede "
                f"{dst} (serialized {d:.6f})",
            ))

    def writer_txid(oid: str, version: int) -> Optional[str]:
        if version == 0:
            return INITIAL_WRITER
        rec = writer_of.get((oid, version))
        return rec.txid if rec is not None else None

    for rec in records:
        for oid, version, _value in rec.reads:
            src = writer_txid(oid, version)
            if src is not None and src != rec.txid:
                add_edge(src, rec.txid, f"write->read on {oid} v{version}")
            nxt = writer_of.get((oid, version + 1))
            if nxt is not None and nxt.txid != rec.txid:
                add_edge(rec.txid, nxt.txid,
                         f"read->next-write on {oid} v{version}")
        for oid, version, _value in rec.writes:
            src = writer_txid(oid, version - 1)
            if src is not None and src != rec.txid:
                add_edge(src, rec.txid, f"write->write on {oid} v{version - 1}")

    cycle = _find_cycle(edges)
    if cycle is not None:
        violations.append(OracleViolation(
            "mc-serializable", "precedence-cycle",
            "no serial order exists: " + " -> ".join(cycle),
        ))
    return violations


def _find_cycle(edges: Mapping[str, Sequence[str]]) -> Optional[List[str]]:
    """First cycle in deterministic DFS order, as a closed node path."""
    WHITE, GREY, BLACK = 0, 1, 2
    color: Dict[str, int] = {node: WHITE for node in edges}
    path: List[str] = []

    def visit(node: str) -> Optional[List[str]]:
        color[node] = GREY
        path.append(node)
        for succ in edges.get(node, ()):
            if color.get(succ, WHITE) == GREY:
                start = path.index(succ)
                return path[start:] + [succ]
            if color.get(succ, WHITE) == WHITE:
                found = visit(succ)
                if found is not None:
                    return found
        path.pop()
        color[node] = BLACK
        return None

    for node in edges:
        if color[node] == WHITE:
            found = visit(node)
            if found is not None:
                return found
    return None
