"""Same-seed equivalence: the RPC substrate defaults are byte-identical
to the pre-substrate build.

The refactor moved every protocol message onto repro.rpc.  With the
default RpcConfig (batch_window=0, cache off) no batcher exists and the
lookup cache is a drop-in hint dict, so the kernel must execute the
exact same event sequence as before the refactor.  These pins were
recorded from the pre-refactor tree (commit ecd0040) and re-verified
after it: commits, root aborts, AND the total kernel event count — the
strongest cheap proxy for "the same simulation happened".

If a change legitimately alters the schedule (a new message, a protocol
fix), re-record the pins in the same commit and say why in its message.
"""

import pytest

from repro.core import ClusterConfig, SchedulerKind
from repro.core.config import CheckConfig, PayloadConfig, ProfConfig, RpcConfig
from repro.core.experiment import run_experiment

# (workload, num_nodes, seed) -> (commits, root_aborts, sim_events)
PINS = {
    ("bank", 12, 1): (256, 129, 63198),
    ("dht", 6, 3): (515, 23, 23149),
}


def run_cell(workload, num_nodes, seed, rpc=None, check=None, prof=None,
             payload=None):
    kwargs = {} if rpc is None else {"rpc": rpc}
    if check is not None:
        kwargs["check"] = check
    if prof is not None:
        kwargs["prof"] = prof
    if payload is not None:
        kwargs["payload"] = payload
    cfg = ClusterConfig(
        num_nodes=num_nodes, seed=seed,
        scheduler=SchedulerKind.RTS, cl_threshold=4, **kwargs,
    )
    return run_experiment(workload, cfg, read_fraction=0.9,
                          workers_per_node=2, horizon=8.0)


@pytest.mark.parametrize("cell", sorted(PINS), ids=lambda c: f"{c[0]}-n{c[1]}")
def test_default_config_matches_pre_substrate_pin(cell):
    result = run_cell(*cell)
    assert (result.commits, result.root_aborts, result.sim_events) == PINS[cell]


def test_explicit_zero_config_is_the_default():
    """batch_window=0.0 + cache=False spelled out must equal the default
    path bit-for-bit — the knobs are strictly additive."""
    cell = ("dht", 6, 3)
    explicit = run_cell(*cell, rpc=RpcConfig(batch_window=0.0, cache=False))
    assert (explicit.commits, explicit.root_aborts,
            explicit.sim_events) == PINS[cell]
    assert explicit.messages_sent > 0
    assert "rpc_batches" not in explicit.extra
    assert "rpc_cache_hits" not in explicit.extra


@pytest.mark.parametrize(
    "prof",
    [ProfConfig(enabled=False), ProfConfig(enabled=True)],
    ids=["off", "counters"],
)
def test_prof_config_preserves_the_pin(prof):
    """ProfConfig is strictly additive in *both* states: enabled=False
    installs no profiler (the run loop pays one is-not-None guard), and
    counters mode only tallies callback dispatches — it never touches
    the schedule, so the committed timeline is still the pin."""
    cell = ("dht", 6, 3)
    result = run_cell(*cell, prof=prof)
    assert (result.commits, result.root_aborts,
            result.sim_events) == PINS[cell]
    if prof.enabled:
        snap = result.extra["prof"]
        # every processed kernel event was attributed
        assert snap["events"] == result.sim_events
        assert snap["mode"] == "counters"
    else:
        assert "prof" not in result.extra


def test_payload_config_off_preserves_the_pin():
    """PayloadConfig(enabled=False) — the default, spelled out — builds
    no plane and no wire-cost model, so the committed timeline is still
    the pin bit-for-bit and no payload keys leak into extras."""
    cell = ("dht", 6, 3)
    result = run_cell(*cell, payload=PayloadConfig(enabled=False))
    assert (result.commits, result.root_aborts,
            result.sim_events) == PINS[cell]
    assert "payload_mode" not in result.extra
    assert "payload_bytes_on_wire" not in result.extra


@pytest.mark.parametrize("sanitize", [False, True], ids=["off", "on"])
def test_check_config_preserves_the_pin(sanitize):
    """CheckConfig is strictly additive in *both* states: sanitize=False
    builds no sanitizer (byte-identical by construction), and
    sanitize=True only observes — the sanitizer draws no randomness and
    sends no messages, so the committed timeline is still the pin."""
    cell = ("dht", 6, 3)
    result = run_cell(*cell, check=CheckConfig(sanitize=sanitize))
    assert (result.commits, result.root_aborts,
            result.sim_events) == PINS[cell]


def test_default_controller_is_off_and_pin_holds():
    """The ScheduleController hook defaults to None — the pinned cells
    above already run without it (one is-not-None guard in run()), and
    the slot really is unset on a fresh environment."""
    from repro.core.cluster import Cluster

    assert Cluster(ClusterConfig(num_nodes=2)).env.controller is None
    # The PINS parametrization is the byte-identity evidence; this cell
    # re-checks one of them explicitly next to the controller assertion.
    cell = ("dht", 6, 3)
    result = run_cell(*cell)
    assert (result.commits, result.root_aborts,
            result.sim_events) == PINS[cell]


def test_passthrough_controller_is_byte_identical():
    """A controller that always returns 0 must reproduce the
    uncontrolled schedule event-for-event — the explorer's soundness
    rests on the controlled loop being a faithful copy of run()."""
    import itertools

    from repro.core.cluster import Cluster
    from repro.dstm.transaction import Transaction
    from repro.sim import ScheduleController

    def run_once(controller):
        Transaction._ids = itertools.count(1)
        cluster = Cluster(ClusterConfig(
            num_nodes=4, seed=2, scheduler=SchedulerKind.RTS, cl_threshold=4,
        ))
        for i in range(3):
            cluster.alloc(f"o{i}", 0, node=i % 4)
        results = []

        def body(tx, oid):
            value = yield from tx.read(oid)
            yield from tx.compute(0.01)
            yield from tx.write(oid, value + 1)
            return value

        def driver(k):
            yield cluster.env.timeout(0.001 * k)
            value = yield from cluster.atomic(
                body, f"o{k % 3}", node=k % 4, profile="eq"
            )
            results.append((k, value))

        for k in range(6):
            cluster.spawn(driver(k), name=f"tx@{k % 4}")
        cluster.env.controller = controller
        cluster.env.run()
        return (cluster.env.events_processed, cluster.env.now, sorted(results))

    assert run_once(ScheduleController()) == run_once(None)
