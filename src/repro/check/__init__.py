"""repro.check — correctness tooling for the reproduction.

Four layers, one rule namespace (:mod:`repro.check.rules`):

* :mod:`repro.check.lint` — the determinism linter
  (``python -m repro.check.lint src/``);
* :mod:`repro.check.sanitize` — the runtime invariant sanitizer
  (``CheckConfig(sanitize=True)`` / ``REPRO_SANITIZE=1``);
* :mod:`repro.check.races` — the trace-replay race detector
  (``python -m repro.check.races run.jsonl``);
* :mod:`repro.check.explore` — the bounded systematic interleaving
  explorer (``python -m repro.check.explore --nodes 2 --txns 2``), with
  its serializability oracle in :mod:`repro.check.oracle`.

See DESIGN.md §3e for the full rule table.
"""

from repro.check.rules import (
    EXPLORE_RULES,
    INVARIANT_RULES,
    LINT_RULES,
    RACE_RULES,
    RULES,
    Rule,
    rule,
)
from repro.check.sanitize import InvariantViolation, Sanitizer

__all__ = [
    "Rule",
    "rule",
    "RULES",
    "LINT_RULES",
    "INVARIANT_RULES",
    "RACE_RULES",
    "EXPLORE_RULES",
    "InvariantViolation",
    "Sanitizer",
]
