"""Tests for the per-node serial message server (congestion model)."""

import pytest

from repro.net import MessageType, Network, Node, Topology
from repro.sim import Environment, RngRegistry


def build(env, n=3, msg_process_time=0.0):
    topo = Topology(n, RngRegistry(seed=4).stream("topo"))
    net = Network(env, topo)
    nodes = [
        Node(env, net, i, msg_process_time=msg_process_time) for i in range(n)
    ]
    return net, nodes


class TestSerialServer:
    def test_zero_service_time_dispatches_inline(self, env):
        net, nodes = build(env, msg_process_time=0.0)
        seen = []
        nodes[1].on(MessageType.PING, lambda m: seen.append(env.now))
        nodes[0].send(1, MessageType.PING)
        env.run()
        assert seen == [net.topology.delay(0, 1)]
        assert nodes[1].messages_processed == 0  # server bypassed

    def test_service_time_delays_dispatch(self, env):
        net, nodes = build(env, msg_process_time=0.01)
        seen = []
        nodes[1].on(MessageType.PING, lambda m: seen.append(env.now))
        nodes[0].send(1, MessageType.PING)
        env.run()
        assert seen == [pytest.approx(net.topology.delay(0, 1) + 0.01)]
        assert nodes[1].messages_processed == 1

    def test_burst_queues_serially(self, env):
        net, nodes = build(env, msg_process_time=0.01)
        seen = []
        nodes[2].on(MessageType.PING, lambda m: seen.append(env.now))
        for _ in range(5):
            nodes[0].send(2, MessageType.PING)
        env.run()
        # All five arrive together but dispatch 10ms apart.
        gaps = [b - a for a, b in zip(seen, seen[1:])]
        assert all(g == pytest.approx(0.01) for g in gaps)
        assert nodes[2].total_queueing_delay > 0.01 * 4

    def test_server_idles_and_restarts(self, env):
        net, nodes = build(env, msg_process_time=0.005)
        seen = []
        nodes[1].on(MessageType.PING, lambda m: seen.append(env.now))

        def driver(env):
            nodes[0].send(1, MessageType.PING)
            yield env.timeout(1.0)  # let the server drain and go idle
            nodes[0].send(1, MessageType.PING)

        env.process(driver(env))
        env.run()
        assert len(seen) == 2
        assert nodes[1].messages_processed == 2

    def test_fifo_order_preserved_under_service(self, env):
        net, nodes = build(env, msg_process_time=0.002)
        seen = []
        nodes[1].on(MessageType.PING, lambda m: seen.append(m.payload["i"]))
        for i in range(8):
            nodes[0].send(1, MessageType.PING, {"i": i})
        env.run()
        assert seen == list(range(8))

    def test_rpc_still_works_through_server(self, env):
        net, nodes = build(env, msg_process_time=0.003)
        nodes[1].on(
            MessageType.PING,
            lambda m: nodes[1].reply(m, MessageType.PONG, {"ok": True}),
        )

        def client(env):
            reply = yield from nodes[0].request(1, MessageType.PING)
            return reply.payload["ok"]

        proc = env.process(client(env))
        assert env.run(until=proc) is True
