"""The per-node TM proxy: the object-access protocol (Algorithms 2-4).

Responsibilities:

* **local object store** — the objects this node currently owns (dataflow
  model: the single writable copy lives with its owner and migrates);
* **``Open_Object``** (Algorithm 2) — requester side: locate the owner
  (hint cache, falling back to the directory), send the retrieve request
  carrying ``(oid, txid, myCL, ETS)``, and either return the granted
  object, or wait out an assigned backoff racing the object hand-off, or
  raise :class:`TransactionAborted`;
* **``Retrieve_Request``** (Algorithm 3) — owner side: serve free objects
  (migrating ownership to writers), serve committed snapshots to readers,
  and on conflict delegate the abort-or-enqueue decision to the attached
  scheduler policy;
* **``Retrieve_Response`` / hand-offs** (Algorithm 4) — requester side:
  wake the waiting ``Open_Object`` (the paper's ``TransactionQueue`` is
  our ``_waiters`` map); an object arriving for a transaction that
  already gave up is forwarded onward to the next queued requester, which
  works because the remaining requester list ships *with* every ownership
  hand-off (§III-B).

The proxy is deliberately policy-free: all abort/enqueue choices live in
the :class:`~repro.scheduler.base.SchedulerPolicy` instance bound at
construction.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.dstm.contention import DoomRegistry, WinnerPolicy
from repro.dstm.directory import DirectoryShard
from repro.dstm.errors import (
    AbortReason,
    OwnerUnreachable,
    TransactionAborted,
    TransactionError,
)
from repro.dstm.objects import ObjectMode, ObjectState, VersionedObject, home_node
from repro.dstm.transaction import ETS, Transaction
from repro.net.message import Message, MessageType
from repro.net.node import Node
from repro.rpc import ENDPOINTS, LookupCache, PeerUnreachable, RpcClient
from repro.scheduler.base import (
    ConflictContext,
    ConflictDecision,
    DecisionKind,
    SchedulerPolicy,
)
from repro.scheduler.queues import Requester, RequesterList
from repro.sim import Tracer
from repro.util.stats import Ewma

__all__ = ["Grant", "TMProxy"]


class Grant:
    """What a successful ``Open_Object`` returns."""

    __slots__ = (
        "oid", "value", "version", "owner_clock", "local_cl", "served_by",
        "psrc",
    )

    def __init__(
        self,
        oid: str,
        value: Any,
        version: int,
        owner_clock: int,
        local_cl: int,
        served_by: int,
        psrc: Optional[int] = None,
    ) -> None:
        self.oid = oid
        self.value = value
        self.version = version
        self.owner_clock = owner_clock
        self.local_cl = local_cl
        self.served_by = served_by
        #: payload plane (proxy mode): node advertised as holding the
        #: bytes for this version — the ObjectProxy factory.  None when
        #: the plane is off or bytes rode the grant eagerly.
        self.psrc = psrc

    def __repr__(self) -> str:
        return f"<Grant {self.oid} v{self.version} from n{self.served_by}>"


class TMProxy:
    """One node's transactional-memory proxy."""

    def __init__(
        self,
        node: Node,
        directory: DirectoryShard,
        scheduler: SchedulerPolicy,
        tracer: Optional[Tracer] = None,
        fallback_exec_estimate: float = 0.05,
        winner_policy: WinnerPolicy = WinnerPolicy.HOLDER_WINS,
        conflict_scope: str = "root",
        rpc_policy: Optional[Any] = None,
        metrics: Optional[Any] = None,
        rpc_client: Optional[RpcClient] = None,
    ) -> None:
        self.node = node
        self.env = node.env
        self.directory = directory
        self.scheduler = scheduler
        self.tracer = tracer or Tracer()
        #: the typed caller side of the RPC substrate.  Built here from
        #: the legacy knobs when the cluster does not supply one, so
        #: directly-constructed proxies (tests) keep working unchanged.
        if rpc_client is None:
            rpc_client = RpcClient(
                node, policy=rpc_policy, tracer=self.tracer, metrics=metrics
            )
        self.rpc_client = rpc_client
        #: timeout/retry policy for RPCs (:class:`repro.rpc.RetryPolicy`);
        #: None (fault-free build) keeps every RPC a plain blocking wait.
        self.rpc_policy = rpc_client.policy
        #: the cluster metrics collector, for fault counters (optional)
        self.metrics = metrics
        self.fallback_exec_estimate = float(fallback_exec_estimate)
        self.winner_policy = WinnerPolicy(winner_policy)
        if conflict_scope not in ("root", "level", "mixed"):
            raise ValueError(
                f"conflict_scope must be 'root', 'level' or 'mixed', got {conflict_scope!r}"
            )
        #: who a lost busy-object conflict kills.  "mixed" (default, the
        #: closed-nesting model of the paper's TFA baseline [24]):
        #: execution-phase copy fetches abort only the requesting nested
        #: level, while commit-phase acquisitions abort the whole parent —
        #: those are the "losing parent transactions" RTS schedules.
        #: "root"/"level" force one victim for every conflict (ablations).
        self.conflict_scope = conflict_scope
        #: lazily-aborted transactions (greedy-timestamp ablation)
        self.doomed = DoomRegistry()
        #: runtime invariant sanitizer (repro.check); set by the cluster
        #: when CheckConfig.sanitize is on, else every hook stays a
        #: one-guard no-op
        self.sanitizer = None
        #: payload plane (repro.rpc.payload): this node's resolved-bytes
        #: cache, set via :meth:`enable_payload` when
        #: ``PayloadConfig.enabled``; None keeps every hook a one-guard
        #: no-op and the timeline byte-identical
        self.payload = None
        scheduler.bind(node.node_id)

        #: objects owned by this node
        self.store: Dict[str, VersionedObject] = {}
        #: the paper's scheduling_List: per-object requester queues
        self.queues: Dict[str, RequesterList] = {}
        #: last known owner per object: the node's directory lookup cache
        #: (shared with TFA validation and fault recovery through the rpc
        #: client).  Hint mode behaves exactly like the plain dict it
        #: replaced; fenced mode invalidates on observed version advance.
        self.owner_hints: LookupCache = rpc_client.cache
        #: the paper's TransactionQueue: (root txid, oid) -> waiting event
        self._waiters: Dict[Tuple[str, str], Any] = {}
        #: EWMA of observed validation-window durations (for holder_remaining)
        self.validation_time = Ewma(alpha=0.3, initial=0.0)
        #: time each VALIDATING/IN_USE state was entered, per oid
        self._hold_started: Dict[str, float] = {}
        #: holder's reported transaction start time, per oid (greedy CM)
        self._holder_start: Dict[str, float] = {}
        #: requester-side enqueue outcomes (diagnostics + tests)
        self.enqueue_wins = 0
        self.enqueue_expiries = 0
        #: enqueue-wait reporting hook (repro.check.explore's
        #: bounded-enqueue-time property): called once per completed
        #: hand-off wait with (root txid, oid, budget, waited, won).
        #: None (the default) keeps the wait path on a one-guard no-op.
        self.enqueue_observer: Optional[
            Callable[[str, str, float, float, bool], None]
        ] = None
        #: how many times an expired waiter re-requests before aborting
        self.rerequest_limit = 8
        #: fault recovery: the last ownership transfer we granted, per
        #: oid — (requester node, requester root txid, response payload,
        #: grant time).  A transferred grant deletes our copy before the
        #: response hits the wire; if that response is dropped the copy
        #: exists nowhere.  The same requester's RPC retry is answered
        #: from this cache (idempotent re-grant); the orphan sweep
        #: repatriates entries old enough that the requester must have
        #: given up.  Cleared when the object comes back.
        self._granted: Dict[str, Tuple[int, str, Dict[str, Any], float]] = {}

        node.on(MessageType.RETRIEVE_REQUEST, self._on_retrieve_request)
        node.on(MessageType.OBJECT_HANDOFF, self._on_object_handoff)
        # Fire-and-forget ownership registrations still produce acks from
        # the directory shard; absorb the ones no RPC waiter claims.
        node.on(MessageType.DIR_UPDATE_ACK, lambda _msg: None)
        # Fault recovery: a retrieve response that arrives after its RPC
        # timed out may carry an ownership transfer — state that must not
        # be lost (see _on_late_retrieve_response).
        node.on(MessageType.RETRIEVE_RESPONSE, self._on_late_retrieve_response)
        # Heartbeat acks report which of our copies went stale.
        node.on(MessageType.LEASE_RENEW_ACK, self._on_lease_ack)

    # ------------------------------------------------------------------
    # Setup-time API (used by the cluster bootstrap, outside simulation)
    # ------------------------------------------------------------------

    def install_object(self, oid: str, value: Any, version: int = 0) -> VersionedObject:
        """Place a fresh object at this node (bootstrap only)."""
        if oid in self.store:
            raise TransactionError(f"object {oid} already installed at node {self.node.node_id}")
        obj = VersionedObject(oid, value, version)
        self.store[oid] = obj
        return obj

    def enable_payload(self, node_payload: Any) -> None:
        """Attach this node's payload-plane cache and start serving
        ``PAYLOAD_FETCH`` (cluster bootstrap, payload plane on only)."""
        self.payload = node_payload
        self.node.on(MessageType.PAYLOAD_FETCH, self._on_payload_fetch)

    def _grant_wire_bytes(self, oid: str) -> int:
        """Bytes a value-carrying grant/hand-off for ``oid`` ships."""
        pp = self.payload
        return 0 if pp is None else pp.plane.grant_bytes(oid)

    # ------------------------------------------------------------------
    # Payload plane (repro.rpc.payload): lazy byte resolution
    # ------------------------------------------------------------------

    def resolve_payload(self, grant: Grant) -> Generator[Any, Any, None]:
        """Materialise the bytes behind ``grant`` at this node
        (generator; ``yield from``).

        Proxy mode only — eager mode shipped the bytes with the grant.
        The resolved-bytes cache is keyed by the version fence, so a hit
        costs nothing and a fence bump (any committed write) misses by
        construction.  A miss fetches from the grant's advertised
        factory, falling back once to the plane's current source; if
        both refuse (the fence moved mid-flight) or the factory is
        unreachable under faults, the read proceeds without bytes — the
        semantic value is already in hand, and commit-time validation
        arbitrates staleness exactly as before.
        """
        pp = self.payload
        if pp is None or not pp.plane.proxy_mode:
            return
        oid, version = grant.oid, grant.version
        hit = pp.lookup(oid, version)
        if self.tracer.wants("payload.fetch"):
            self.tracer.emit(
                self.env.now, "payload.fetch", oid,
                node=f"n{self.node.node_id}", hit=hit,
                bytes=0 if hit else pp.plane.size_of(oid),
            )
        if hit:
            return
        src = grant.psrc if grant.psrc is not None else pp.plane.source.get(oid)
        if src is None or src == self.node.node_id:
            # We are the factory (we committed these bytes, or the grant
            # predates the plane's bookkeeping): materialise locally.
            pp.install(oid, version)
            return
        ok = yield from self._fetch_payload(oid, version, src)
        if not ok:
            alt = pp.plane.source.get(oid)
            if alt is not None and alt not in (src, self.node.node_id):
                yield from self._fetch_payload(oid, version, alt)

    def _fetch_payload(
        self, oid: str, version: int, src: int
    ) -> Generator[Any, Any, bool]:
        pp = self.payload
        pp.fetches += 1
        try:
            reply = yield from self.rpc(
                src, MessageType.PAYLOAD_FETCH,
                {"oid": oid, "version": version},
            )
        except OwnerUnreachable:
            return False
        p = reply.payload
        if p.get("ok"):
            pp.install(oid, int(p["version"]))
            return True
        return False

    def _on_payload_fetch(self, msg: Message) -> None:
        """Serve bytes for ``(oid, version)`` from this node's resolved
        store.  Serves only at the exact requested fence — bytes for any
        other fence would be stale (or fabricated) the moment they land."""
        p = msg.payload
        oid: str = p["oid"]
        want = int(p["version"])
        pp = self.payload
        have = pp.cache_version(oid)
        if have == want:
            if self.sanitizer is not None:
                self.sanitizer.check_payload_serve(
                    oid, want, node=self.node.node_id, now=self.env.now
                )
            pp.served += 1
            pp.plane.fetch_bytes += pp.plane.size_of(oid)
            self.node.reply(
                msg, MessageType.PAYLOAD_FETCH_REPLY,
                {"oid": oid, "ok": True, "version": want},
                wire_bytes=pp.plane.size_of(oid),
            )
        else:
            pp.refused += 1
            self.node.reply(
                msg, MessageType.PAYLOAD_FETCH_REPLY,
                {"oid": oid, "ok": False, "version": have},
            )

    # ------------------------------------------------------------------
    # RPC with timeout/retry (fault recovery)
    # ------------------------------------------------------------------

    def rpc(
        self,
        dst: int,
        mtype: MessageType,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Generator[Any, Any, Message]:
        """A proxy RPC (generator; ``yield from``).

        Delegates to the node's :class:`~repro.rpc.RpcClient` — the
        substrate owns the tracing/metrics and (via
        :meth:`~repro.net.node.Node.request`) the single retry loop.
        Without a policy (fault-free build) the call is a plain blocking
        wait, no timeout events; with one, a peer silent through every
        growing-timeout attempt surfaces as
        :class:`~repro.dstm.errors.OwnerUnreachable`.
        """
        endpoint = ENDPOINTS.for_request(mtype)
        if endpoint is None:
            raise TransactionError(f"no endpoint registered for {mtype.value}")
        try:
            reply = yield from self.rpc_client.call(dst, endpoint.name, payload)
        except OwnerUnreachable:
            raise
        except PeerUnreachable as exc:
            raise OwnerUnreachable(exc.dst, exc.what, exc.attempts) from None
        return reply

    # ------------------------------------------------------------------
    # Requester side: Open_Object (Algorithm 2)
    # ------------------------------------------------------------------

    def open_object(
        self,
        tx: Transaction,
        oid: str,
        mode: ObjectMode,
    ) -> Generator[Any, Any, Grant]:
        """Acquire ``oid`` for ``tx`` (generator; use ``yield from``).

        Returns a :class:`Grant`; raises :class:`TransactionAborted` when
        the scheduler rejects us or an assigned backoff expires.
        """
        root = tx.root
        ets = self._build_ets(root)
        span_on = self.tracer.wants("span.phase")
        if span_on:
            self.tracer.emit(
                self.env.now, "span.phase", tx.txid,
                phase="open", edge="B", oid=oid,
            )
        # While an ownership hand-off is in flight, both the directory and
        # the hint chain can be transiently stale; chasing pauses briefly
        # between hops so the migration can land.
        chase_pause = max(self.node.network.topology.min_delay * 0.5, 1e-4)
        expiries = 0
        try:
            grant = yield from self._open_object_chase(
                tx, root, oid, mode, ets, chase_pause, expiries
            )
            if span_on:
                self.tracer.emit(
                    self.env.now, "span.phase", tx.txid,
                    phase="open", edge="E", oid=oid,
                )
            return grant
        except OwnerUnreachable as exc:
            # The owner (or the home directory) stayed silent through
            # every retry: environmental failure, the whole root aborts
            # and waits out the scheduler's owner-failure stall.  Lease
            # expiry at the home makes the object retrievable again —
            # drop our hint so the retry asks the directory, not the
            # same dead peer.
            self.owner_hints.pop(oid, None)
            raise TransactionAborted(
                root, AbortReason.OWNER_FAILURE, oid=oid, detail=str(exc)
            )

    def _open_object_chase(
        self,
        tx: Transaction,
        root: Transaction,
        oid: str,
        mode: ObjectMode,
        ets: ETS,
        chase_pause: float,
        expiries: int,
    ) -> Generator[Any, Any, Grant]:
        for hop in range(256):
            owner = self.owner_hints.lookup(oid)
            if self.tracer.wants("rpc.cache"):
                self.tracer.emit(
                    self.env.now, "rpc.cache", oid,
                    node=f"n{self.node.node_id}", hit=owner is not None,
                )
            if owner is None:
                owner = yield from self._lookup_owner(oid)
            reply = yield from self.rpc(
                owner,
                MessageType.RETRIEVE_REQUEST,
                {
                    "oid": oid,
                    "txid": root.task_id,
                    "mode": mode.value,
                    "my_cl": root.my_cl(),
                    "ets": (ets.start, ets.request, ets.expected_commit),
                },
            )
            p = reply.payload

            if p.get("not_owner"):
                hint = p.get("owner_hint")
                if hint == self.node.node_id and oid not in self.store:
                    # Dead-end hint: the chain points back at us but the
                    # transfer never arrived (lost on the wire).  Fall
                    # back to the directory, whose lease reclaim is the
                    # authority that will re-host the object.
                    self.owner_hints.pop(oid, None)
                elif hint is not None and hint != owner:
                    self.owner_hints[oid] = hint
                else:
                    self.owner_hints.pop(oid, None)
                yield self.env.timeout(chase_pause)
                continue

            if p["granted"]:
                return self._absorb_grant(root, oid, mode, p, reply)

            if p.get("enqueued"):
                # backoff None = parked on the local object lock (no
                # scheduler budget); bounded by a generous cap purely as
                # a live-lock safety valve.
                budget = p["backoff"] if p["backoff"] is not None else 30.0
                span_on = self.tracer.wants("span.phase")
                if span_on:
                    self.tracer.emit(
                        self.env.now, "span.phase", tx.txid,
                        phase="queue", edge="B", oid=oid,
                    )
                grant_payload = yield from self._await_handoff(
                    root, oid, float(budget)
                )
                if span_on:
                    self.tracer.emit(
                        self.env.now, "span.phase", tx.txid,
                        phase="queue", edge="E", oid=oid,
                        won=grant_payload is not None,
                    )
                if grant_payload is None:
                    # Backoff expired before the object arrived.  §III-B:
                    # "the transaction requests the object and is enqueued
                    # again as a new transaction; the duplicated
                    # transaction will be removed from the queue."  We
                    # re-request a bounded number of times (the owner's
                    # removeDuplicate drops our stale entry), then give up
                    # and abort for real.
                    expiries += 1
                    self.enqueue_expiries += 1
                    if expiries <= self.rerequest_limit:
                        continue
                    raise TransactionAborted(
                        self._conflict_victim(tx, mode), AbortReason.BACKOFF_EXPIRED,
                        oid=oid, detail=f"backoff {budget:.4f}s expired",
                    )
                self.enqueue_wins += 1
                return self._absorb_grant(root, oid, mode, grant_payload, None)

            # Plain rejection: the scheduler chose abort.  Per the paper,
            # the loser of a busy-object conflict is the *parent*
            # transaction (§III: "RTS performs two actions for a losing
            # parent transaction") — the 'level' ablation confines the
            # abort to the requesting nested level instead.
            raise TransactionAborted(
                self._conflict_victim(tx, mode), AbortReason.BUSY_OBJECT, oid=oid
            )
        # The object migrated faster than we could chase it for 256 hops —
        # it is extremely contended; treat as losing a conflict on it.
        raise TransactionAborted(
            self._conflict_victim(tx, mode), AbortReason.BUSY_OBJECT, oid=oid,
            detail="owner chase exhausted",
        )

    def _conflict_victim(self, tx: Transaction, mode: ObjectMode) -> Transaction:
        if self.conflict_scope == "root":
            return tx.root
        if self.conflict_scope == "level":
            return tx
        # mixed: inner levels absorb execution-phase (copy) conflicts;
        # commit-phase acquisitions are issued by (and kill) the root.
        return tx if mode.is_copy else tx.root

    def _build_ets(self, root: Transaction) -> ETS:
        now = self.node.now_local
        expected = self.scheduler.expected_duration(
            root.profile, self.fallback_exec_estimate
        )
        return ETS(
            start=root.start_local_time,
            request=now,
            expected_commit=root.start_local_time + expected,
        )

    def _lookup_owner(self, oid: str) -> Generator[Any, Any, int]:
        home = home_node(oid, self.node.network.num_nodes)
        reply = yield from self.rpc(home, MessageType.DIR_LOOKUP, {"oid": oid})
        p = reply.payload
        if not p["known"]:
            raise TransactionError(f"object {oid} is not registered anywhere")
        self.owner_hints.put(oid, p["owner"], p.get("version"))
        return int(p["owner"])

    def _absorb_grant(
        self,
        root: Transaction,
        oid: str,
        mode: ObjectMode,
        payload: Dict[str, Any],
        reply: Optional[Message],
    ) -> Grant:
        served_by = int(payload["served_by"])
        owner_clock = (
            reply.clock if reply is not None else int(payload.get("owner_clock", 0))
        )
        psrc = payload.get("psrc")
        grant = Grant(
            oid=oid,
            value=payload["value"],
            version=int(payload["version"]),
            owner_clock=owner_clock,
            local_cl=int(payload.get("local_cl", 0)),
            served_by=served_by,
            psrc=int(psrc) if psrc is not None else None,
        )
        root.known_cl[oid] = grant.local_cl
        if mode is ObjectMode.ACQUIRE:
            if payload.get("transferred"):
                # Ownership migrated to us with this grant; the object
                # enters the validation window immediately (we are
                # mid-commit).
                self._install_transferred(oid, payload, holder=root.task_id)
            else:
                # We already owned it (local re-grant): (re-)enter the
                # validation window.
                obj = self.store[oid]
                obj.state = ObjectState.VALIDATING
                obj.holder = root.task_id
                self._hold_started.setdefault(oid, self.node.now_local)
            self._holder_start[oid] = root.start_local_time
            self.owner_hints.put(oid, self.node.node_id, grant.version)
            if self.sanitizer is not None:
                # The just-installed writable copy must be the only
                # non-FREE copy of this version anywhere in the cluster.
                self.sanitizer.check_single_writable_copy(
                    oid, node=self.node.node_id, now=self.env.now
                )
        else:
            self.owner_hints.setdefault(oid, served_by, grant.version)
        if self.tracer.wants("dstm.grant"):
            self.tracer.emit(
                self.env.now, "dstm.grant", oid,
                txid=root.task_id, mode=mode.value, version=grant.version,
                served_by=served_by,
            )
        return grant

    def _install_transferred(
        self, oid: str, payload: Dict[str, Any], holder: Optional[str]
    ) -> None:
        """Install an object whose ownership just migrated to this node."""
        existing = self.store.get(oid)
        if existing is not None and existing.version > int(payload["version"]):
            return  # late duplicate of a transfer we have moved past
        self._granted.pop(oid, None)
        obj = VersionedObject(oid, payload["value"], int(payload["version"]))
        if self.payload is not None:
            if self.payload.plane.proxy_mode:
                # Ownership migrated; the bytes did not.  Keep pointing
                # at the factory until a commit materializes new bytes
                # here.
                psrc = payload.get("psrc")
                obj.payload_src = int(psrc) if psrc is not None else None
            else:
                # Eager mode: the payload rode this transfer inline.
                obj.payload_src = self.node.node_id
                self.payload.plane.note_materialize(
                    self.node.node_id, oid, obj.version
                )
        if holder is not None:
            # Acquisition happens mid-commit: straight into validation.
            obj.state = ObjectState.VALIDATING
            obj.holder = holder
            self._hold_started[oid] = self.node.now_local
        self.store[oid] = obj
        self.owner_hints[oid] = self.node.node_id
        queue_entries: List[Requester] = payload.get("queue") or []
        if queue_entries:
            self.queues[oid] = RequesterList.from_snapshot(
                queue_entries, bk=float(payload.get("bk", 0.0))
            )
            if self.tracer.wants("obs.queue"):
                self._trace_queue(oid)
        # Register ownership with the home directory (asynchronous: the
        # old owner forwards stragglers to us in the meantime).  The
        # last-committed value rides along so the home's recovery
        # snapshot stays current even if the eventual commit publish is
        # lost — transfers always carry committed state.
        home = home_node(oid, self.node.network.num_nodes)
        self.node.send(
            home, MessageType.DIR_UPDATE,
            {
                "oid": oid, "owner": self.node.node_id, "version": None,
                "value": payload["value"], "value_version": int(payload["version"]),
            },
        )

    def _await_handoff(
        self, root: Transaction, oid: str, backoff: float
    ) -> Generator[Any, Any, Optional[Dict[str, Any]]]:
        """Wait for an object hand-off, racing the assigned backoff."""
        key = (root.task_id, oid)
        waiter = self.env.event()
        self._waiters[key] = waiter
        expiry = self.env.timeout(max(backoff, 0.0))
        started = self.env.now
        outcome = yield (waiter | expiry)
        if waiter in outcome:
            if self.enqueue_observer is not None:
                self.enqueue_observer(
                    root.task_id, oid, backoff, self.env.now - started, True
                )
            return outcome[waiter]
        # Backoff expired first: deregister (Algorithm 2's
        # TransactionQueue.remove) so a late hand-off forwards onward.
        self._waiters.pop(key, None)
        if self.enqueue_observer is not None:
            self.enqueue_observer(
                root.task_id, oid, backoff, self.env.now - started, False
            )
        return None

    # ------------------------------------------------------------------
    # Owner side: Retrieve_Request (Algorithm 3)
    # ------------------------------------------------------------------

    def _on_retrieve_request(self, msg: Message) -> None:
        p = msg.payload
        oid: str = p["oid"]
        root_txid: str = p["txid"]
        mode = ObjectMode(p["mode"])
        now = self.node.now_local

        obj = self.store.get(oid)
        if obj is None:
            cached = self._granted.get(oid)
            if cached is not None and cached[0] == msg.src and cached[1] == root_txid:
                # The requester we transferred the object to is asking
                # again: the response carrying the single writable copy
                # was lost.  Re-send it (idempotent — the requester
                # drops duplicates of a transfer it already absorbed),
                # and refresh the grant age: the requester is alive, so
                # the orphan sweep must not repatriate under it.
                self._granted[oid] = (cached[0], cached[1], cached[2], self.env.now)
                self.node.reply(
                    msg, MessageType.RETRIEVE_RESPONSE, dict(cached[2]),
                    wire_bytes=self._grant_wire_bytes(oid),
                )
                return
            self.node.reply(
                msg, MessageType.RETRIEVE_RESPONSE,
                {
                    "oid": oid, "granted": False, "not_owner": True,
                    "owner_hint": self.owner_hints.get(oid),
                },
            )
            return

        self.scheduler.on_request(oid, root_txid, now)
        local_cl = self._local_cl(oid)

        # Re-grant to the holder itself (same root re-opening its object).
        if obj.state is not ObjectState.FREE and obj.holder == root_txid:
            self._grant(msg, obj, mode, transferred=False, local_cl=local_cl)
            return

        if obj.state is ObjectState.FREE:
            if mode.is_copy:
                # Committed snapshot; ownership unchanged.  TFA serves
                # copies optimistically — the requester validates later.
                self._grant(msg, obj, mode, transferred=False, local_cl=local_cl)
            else:
                # Commit-time acquisition of a free object: migrate the
                # single writable copy to the committing node.
                self._grant(msg, obj, mode, transferred=True, local_cl=local_cl)
            return

        # ---- conflict: the object is being validated by another commit ----

        # Same-node requests never enter distributed contention
        # management: a local thread simply blocks on the proxy's object
        # lock until the validation window closes (microseconds of local
        # waiting in the real system).  The paper's scheduled conflicts
        # are the *remote* ones, priced in round trips.
        if msg.src == self.node.node_id:
            queue = self.queues.get(oid)
            if queue is None:
                queue = RequesterList()
                self.queues[oid] = queue
            queue.remove_duplicate(root_txid)
            s, r, c = p["ets"]
            queue.add_requester(
                1,
                Requester(
                    node=msg.src, txid=root_txid, mode=mode,
                    ets=ETS(s, r, c), enqueued_at=now, local_wait=True,
                ),
            )
            if self.tracer.wants("sched.decision"):
                self.tracer.emit(
                    self.env.now, "sched.decision", oid,
                    node=f"n{self.node.node_id}", txid=root_txid,
                    action="local_wait", cause="local",
                    cl=queue.get_contention(), threshold=0,
                    bk=queue.bk, elapsed=r - s, backoff=0.0,
                )
            if self.tracer.wants("obs.queue"):
                self._trace_queue(oid)
            self.node.reply(
                msg, MessageType.RETRIEVE_RESPONSE,
                {
                    "oid": oid, "granted": False, "enqueued": True,
                    "backoff": None, "local_cl": local_cl,
                },
            )
            return

        # Contention manager (ablation): an older requester may doom the
        # younger validating holder, which then aborts lazily.
        if (
            self.winner_policy is WinnerPolicy.GREEDY_TIMESTAMP
            and obj.holder is not None
        ):
            requester_start = p["ets"][0]
            holder_start = self._holder_start.get(oid, float("-inf"))
            if requester_start < holder_start:
                self.doomed.doom(obj.holder)

        # ---- conflict: delegate to the scheduler ----
        queue = self.queues.get(oid)
        if queue is None:
            queue = RequesterList()
            self.queues[oid] = queue
        was_duplicate = queue.remove_duplicate(root_txid)
        s, r, c = p["ets"]
        ctx = ConflictContext(
            oid=oid,
            obj=obj,
            mode=mode,
            requester_node=msg.src,
            requester_txid=root_txid,
            requester_cl=int(p.get("my_cl", 0)),
            ets=ETS(s, r, c),
            queue=queue,
            now_local=now,
            holder_remaining=self._holder_remaining(oid),
            was_duplicate=was_duplicate,
        )
        decision = self.scheduler.on_conflict(ctx)
        if self.scheduler.decision_observer is not None:
            self.scheduler.decision_observer(ctx, decision)
        if self.tracer.wants("dstm.conflict"):
            self.tracer.emit(
                self.env.now, "dstm.conflict", oid,
                txid=root_txid, mode=mode.value, state=obj.state.value,
                decision=decision.kind.value, backoff=decision.backoff,
            )
        if self.tracer.wants("sched.decision"):
            self.tracer.emit(
                self.env.now, "sched.decision", oid,
                node=f"n{self.node.node_id}", txid=root_txid,
                action=decision.kind.value,
                cause=decision.cause or decision.kind.value,
                cl=decision.contention, threshold=decision.threshold,
                bk=queue.bk, elapsed=ctx.ets.elapsed, backoff=decision.backoff,
            )
        if decision.kind is DecisionKind.ENQUEUE:
            if self.tracer.wants("obs.queue"):
                self._trace_queue(oid)
            self.node.reply(
                msg, MessageType.RETRIEVE_RESPONSE,
                {
                    "oid": oid, "granted": False, "enqueued": True,
                    "backoff": decision.backoff, "local_cl": local_cl,
                },
            )
        else:
            self.node.reply(
                msg, MessageType.RETRIEVE_RESPONSE,
                {
                    "oid": oid, "granted": False, "enqueued": False,
                    "backoff": 0.0, "local_cl": local_cl,
                },
            )

    def _grant(
        self,
        msg: Message,
        obj: VersionedObject,
        mode: ObjectMode,
        transferred: bool,
        local_cl: int,
    ) -> None:
        payload: Dict[str, Any] = {
            "oid": obj.oid,
            "granted": True,
            "value": obj.value,
            "version": obj.version,
            "local_cl": local_cl,
            "served_by": self.node.node_id,
        }
        if self.payload is not None and self.payload.plane.proxy_mode:
            # Control-plane proxy: advertise the byte factory instead of
            # shipping the payload (the semantic value above is protocol
            # metadata; the bulk bytes resolve lazily at the reader).
            payload["psrc"] = obj.payload_src
        if transferred:
            payload["transferred"] = True
            queue = self.queues.pop(obj.oid, None)
            if queue is not None and len(queue):
                payload["queue"] = queue.snapshot()
                payload["bk"] = queue.bk
            del self.store[obj.oid]
            self._hold_started.pop(obj.oid, None)
            self.owner_hints[obj.oid] = msg.src
            if self.rpc_policy is not None:
                # The copy now exists only in this response; remember it
                # so the requester's retry can be answered if the
                # response is dropped.
                self._granted[obj.oid] = (
                    msg.src, msg.payload["txid"], dict(payload), self.env.now
                )
        self.node.reply(
            msg, MessageType.RETRIEVE_RESPONSE, payload,
            wire_bytes=self._grant_wire_bytes(obj.oid),
        )

    def _local_cl(self, oid: str) -> int:
        """Transactions currently wanting ``oid`` here: the queue, plus
        the validator occupying it.  This is what grants piggyback so
        requesters can maintain myCL at the paper's scale (§III-B's
        worked example uses values of 1-2)."""
        obj = self.store.get(oid)
        validating = 1 if obj is not None and obj.state is ObjectState.VALIDATING else 0
        return self.queue_length(oid) + validating

    def _holder_remaining(self, oid: str) -> float:
        """Estimate of the current holder's remaining hold time."""
        est = self.validation_time.value if self.validation_time.count else 0.0
        if est <= 0.0:
            # No history yet: assume one mean network round trip.
            est = 2.0 * self.node.network.topology.mean_delay()
        started = self._hold_started.get(oid)
        if started is None:
            return est
        elapsed = self.node.now_local - started
        # Hold times are heavy-tailed (a validator can itself be queued
        # behind other commits), so once the mean is exceeded treat the
        # remainder as roughly memoryless rather than nearly done.
        return max(est - elapsed, est * 0.5)

    # ------------------------------------------------------------------
    # Owner side: release + queue service (commit/abort epilogue)
    # ------------------------------------------------------------------

    def begin_validation(self, oid: str, root_txid: str) -> None:
        """Enter the commit validation window for an owned object."""
        obj = self.store[oid]
        obj.state = ObjectState.VALIDATING
        obj.holder = root_txid
        self._hold_started.setdefault(oid, self.node.now_local)
        if self.sanitizer is not None:
            self.sanitizer.check_single_writable_copy(
                oid, node=self.node.node_id, now=self.env.now
            )

    def release_object(self, oid: str, committed: bool) -> None:
        """Release a held object and serve its queue (§III-B hand-offs)."""
        obj = self.store.get(oid)
        if obj is None:
            return
        started = self._hold_started.pop(oid, None)
        self._holder_start.pop(oid, None)
        if started is not None and committed:
            self.validation_time.observe(self.node.now_local - started)
        obj.release()

        queue = self.queues.get(oid)
        if queue is None or not len(queue):
            if queue is not None:
                queue.reset_backlog()
            return
        queue_trace = self.tracer.wants("obs.queue")

        # Every queued snapshot requester (reads and write-copies) gets the
        # committed value simultaneously — §III-B's read multicast.
        for requester in queue.pop_copy_requesters():
            self._send_handoff(requester, obj, transferred=False)

        acquirer = queue.pop_next_acquirer()
        if acquirer is None:
            queue.reset_backlog()
            if queue_trace:
                self._trace_queue(oid)
            return
        # Ownership migrates to the first queued committer; the remaining
        # queue (and its backlog) travels with the object.
        remaining = queue.snapshot()
        bk = queue.bk
        del self.queues[oid]
        del self.store[oid]
        self.owner_hints[oid] = acquirer.node
        handoff = {
            "oid": oid, "txid": acquirer.txid, "mode": acquirer.mode.value,
            "granted": True, "transferred": True,
            "value": obj.value, "version": obj.version,
            "queue": remaining, "bk": bk,
            "local_cl": len(remaining),
            "served_by": self.node.node_id,
            "owner_clock": self.node.clock.tfa_clock,
        }
        if self.payload is not None and self.payload.plane.proxy_mode:
            handoff["psrc"] = obj.payload_src
        if self.rpc_policy is not None:
            # Same in-flight hazard as a transferred grant: if this
            # hand-off is dropped, the acquirer's re-request (its backoff
            # expires with no object) is served from the cache.
            self._granted[oid] = (
                acquirer.node, acquirer.txid, dict(handoff), self.env.now
            )
        self.node.send(
            acquirer.node, MessageType.OBJECT_HANDOFF, handoff,
            wire_bytes=self._grant_wire_bytes(oid),
        )
        if queue_trace:
            # The queue (and backlog) just migrated away with the object.
            self._trace_queue(oid)

    def _send_handoff(self, requester: Requester, obj: VersionedObject, transferred: bool) -> None:
        payload: Dict[str, Any] = {
            "oid": obj.oid, "txid": requester.txid,
            "mode": requester.mode.value,
            "granted": True, "transferred": transferred,
            "value": obj.value, "version": obj.version,
            "local_cl": 0,
            "served_by": self.node.node_id,
            "owner_clock": self.node.clock.tfa_clock,
        }
        if self.payload is not None and self.payload.plane.proxy_mode:
            payload["psrc"] = obj.payload_src
        self.node.send(
            requester.node, MessageType.OBJECT_HANDOFF, payload,
            wire_bytes=self._grant_wire_bytes(obj.oid),
        )

    # ------------------------------------------------------------------
    # Requester side: hand-off arrival (Algorithm 4)
    # ------------------------------------------------------------------

    def _on_object_handoff(self, msg: Message) -> None:
        p = msg.payload
        oid: str = p["oid"]
        txid: str = p["txid"]
        p.setdefault("owner_clock", msg.clock)
        key = (txid, oid)
        waiter = self._waiters.pop(key, None)

        if waiter is not None and not waiter.triggered:
            if p.get("transferred"):
                self._install_transferred(oid, p, holder=txid)
                # The install is done; hand the waiter a payload that will
                # not trigger a second install in _absorb_grant.
                p = dict(p, transferred=False)
            waiter.succeed(p)
            return

        # Algorithm 4's else-branch: nobody here needs the object any more.
        if p.get("transferred"):
            if oid in self.store:
                # Duplicate of a hand-off we already absorbed (fault
                # injection): the transfer happened once; drop the echo.
                return
            # We *are* the owner now (the queue shipped with the object);
            # forward straight to the next queued requester.
            self._install_transferred(oid, p, holder=None)
            self.release_object(oid, committed=False)
        # A read hand-off with no waiter is simply dropped: shared
        # snapshots carry no state.

    # ------------------------------------------------------------------
    # Fault recovery (repro.faults)
    # ------------------------------------------------------------------

    def _on_late_retrieve_response(self, msg: Message) -> None:
        """A RETRIEVE_RESPONSE whose RPC waiter is gone (timed out, or a
        duplicate of one already consumed).

        Snapshot grants and rejections are stale information and are
        dropped.  A *transfer* grant, however, carries the single
        writable copy — losing it would orphan the object until lease
        reclaim — so we absorb the ownership and immediately release,
        serving any queue that travelled with it.
        """
        p = msg.payload
        if not p.get("granted") or not p.get("transferred"):
            return
        oid = p["oid"]
        if oid in self.store:
            return  # duplicate of a transfer we already absorbed
        self._install_transferred(oid, p, holder=None)
        self.release_object(oid, committed=False)

    def _on_lease_ack(self, msg: Message) -> None:
        """Heartbeat ack: the home says some of our copies are stale
        (a lease reclaim or competing commit advanced past them)."""
        for oid in msg.payload.get("stale", ()):
            obj = self.store.get(oid)
            if obj is None or obj.state is not ObjectState.FREE:
                # Held copies are left to the version fence: the commit
                # that holds them will be nacked and discard them itself.
                continue
            self.discard_object(oid)

    def discard_object(self, oid: str) -> None:
        """Drop a stale owned copy (fault recovery only)."""
        self.store.pop(oid, None)
        self.queues.pop(oid, None)
        self._hold_started.pop(oid, None)
        self._holder_start.pop(oid, None)
        if self.owner_hints.get(oid) == self.node.node_id:
            self.owner_hints.pop(oid, None)

    def publish_commit(
        self, oid: str, version: int, value: Any
    ) -> Generator[Any, Any, None]:
        """Sync a freshly committed ``(version, value)`` to the home's
        recovery snapshot (generator process; fault mode only)."""
        home = home_node(oid, self.node.network.num_nodes)
        try:
            yield from self.rpc(
                home, MessageType.COMMIT_PUBLISH,
                {"oid": oid, "version": int(version), "value": value},
            )
        except OwnerUnreachable:
            # The home is unreachable; the periodic heartbeat will carry
            # the same state as soon as it answers again.
            pass

    def lease_heartbeat(
        self, interval: float, offset: float = 0.0
    ) -> Generator[Any, Any, None]:
        """Infinite heartbeat process: renew leases on every owned object.

        Fire-and-forget (the LEASE_RENEW_ACK handler absorbs answers), so
        a crashed or partitioned home costs nothing; ``offset`` staggers
        the per-node phases to avoid synchronized bursts.
        """
        if offset > 0.0:
            yield self.env.timeout(offset)
        num = self.node.network.num_nodes
        while True:
            by_home: Dict[int, List[Tuple[str, int, Any]]] = {}
            for oid in sorted(self.store):
                obj = self.store[oid]
                by_home.setdefault(home_node(oid, num), []).append(
                    (oid, obj.version, obj.value)
                )
            for home, objects in sorted(by_home.items()):
                if home == self.node.node_id:
                    continue  # our own directory sees our copies directly
                self.node.send(home, MessageType.LEASE_RENEW, {"objects": objects})
            yield self.env.timeout(interval)

    def orphan_sweep(
        self,
        interval: float,
        min_age: Optional[float] = None,
        offset: float = 0.0,
    ) -> Generator[Any, Any, None]:
        """Infinite sweep process: repatriate abandoned transferred copies.

        A transferred grant whose response was lost leaves the single
        writable copy existing only in this node's :attr:`_granted` cache.
        Normally the requester's RPC retries pick it up; if the requester
        gave up (its root aborted with ``OWNER_FAILURE``) or crashed, the
        copy is orphaned — unreachable until the home's lease reclaim
        re-hosts it from a possibly older snapshot.  The sweep returns
        such copies to the home (``ORPHAN_RETURN``) *before* lease expiry,
        so the object comes back under its latest committed value.

        ``min_age`` gates repatriation: an entry younger than it may still
        be claimed by the requester's in-flight retries.  The default is
        the RPC policy's worst-case retry wait — by then the requester has
        provably given up (or will be served by the home's fenced copy).
        """
        pol = self.rpc_policy
        if min_age is None:
            min_age = pol.worst_case_wait() if pol is not None else interval
        if offset > 0.0:
            yield self.env.timeout(offset)
        while True:
            yield self.env.timeout(interval)
            yield from self._sweep_orphans(min_age)

    def _sweep_orphans(self, min_age: float) -> Generator[Any, Any, None]:
        now = self.env.now
        for oid in sorted(self._granted):
            entry = self._granted.get(oid)
            if entry is None:
                continue
            requester, _txid, payload, granted_at = entry
            if now - granted_at < min_age:
                continue
            if oid in self.store:
                # The object came home through another path (late
                # hand-off forwarding); the grant cache is just stale.
                self._granted.pop(oid, None)
                continue
            home = home_node(oid, self.node.network.num_nodes)
            try:
                reply = yield from self.rpc(
                    home, MessageType.ORPHAN_RETURN,
                    {
                        "oid": oid,
                        "version": int(payload["version"]),
                        "value": payload["value"],
                        "granted_to": requester,
                    },
                )
            except OwnerUnreachable:
                continue  # silent home: retry on the next sweep
            p = reply.payload
            if p.get("accepted") or p.get("fenced"):
                # Accepted: the home re-hosted the copy under a fenced
                # version.  Fenced: the registry already moved past this
                # grant (the requester registered after all, or a reclaim
                # won).  Either way re-granting from the cache would
                # resurrect a stale copy — drop it, unless a newer grant
                # replaced the entry while this RPC was in flight.
                current = self._granted.get(oid)
                if current is not None and current[3] == granted_at:
                    self._granted.pop(oid, None)
                if self.owner_hints.get(oid) == requester:
                    self.owner_hints.pop(oid, None)

    # ------------------------------------------------------------------
    # Introspection / invariants (tests lean on these)
    # ------------------------------------------------------------------

    def owns(self, oid: str) -> bool:
        return oid in self.store

    def object_state(self, oid: str) -> Optional[ObjectState]:
        obj = self.store.get(oid)
        return obj.state if obj is not None else None

    def queue_length(self, oid: str) -> int:
        queue = self.queues.get(oid)
        return len(queue) if queue is not None else 0

    def _trace_queue(self, oid: str) -> None:
        """Emit an ``obs.queue`` depth sample (callers guard on wants())."""
        self.tracer.emit(
            self.env.now, "obs.queue", oid,
            node=f"n{self.node.node_id}", len=self.queue_length(oid),
        )

    def __repr__(self) -> str:
        return (
            f"<TMProxy node={self.node.node_id} owns={len(self.store)} "
            f"queues={sum(len(q) for q in self.queues.values())}>"
        )
