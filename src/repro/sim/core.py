"""The event loop: :class:`Environment`.

The environment owns the simulated clock and the pending-event schedule.
Schedule entries are keyed ``(time, priority, sequence)``; the
monotonically increasing sequence number makes processing order — and
therefore every simulation in this repository — fully deterministic.

The schedule lives in a :class:`~repro.sim.calendar.CalendarQueue`
(time buckets + far-future overflow heap) rather than a global binary
heap: near-term pushes are amortized O(1) appends and the run loops
drain every event tied at the current ``(time, priority)`` in one batch,
which is where the 10–80-node event mix spends its time.  The queue pops
in exact ``(time, priority, sequence)`` tuple order, so the processed
event sequence is byte-identical to the old heap build (pinned in
``tests/rpc/test_equivalence.py`` and ``tests/sim/test_calendar.py``).

Typical use::

    env = Environment()

    def worker(env, duration):
        yield env.timeout(duration)
        return duration * 2

    proc = env.process(worker(env, 5.0))
    env.run()
    assert env.now == 5.0 and proc.value == 10.0
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, Iterator, Optional

from repro.sim.calendar import CalendarQueue, Entry
from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    Timeout,
    PRIORITY_NORMAL,
    _PENDING,
)
from repro.sim.process import Process

__all__ = ["Environment", "ScheduleController", "SimulationError", "EmptySchedule"]


class SimulationError(RuntimeError):
    """Base class for kernel-level errors."""


class EmptySchedule(SimulationError):
    """Raised by :meth:`Environment.step` when no events remain."""


class ScheduleController:
    """Hook over the kernel's schedule-pop choice points.

    When installed (``env.controller = controller``) the run loop takes a
    separate copy of itself (:meth:`Environment._run_controlled`) that, at
    every pop, hands the controller the *ready set* — every pending entry
    tied at the minimal ``(time, priority)`` — and lets it either

    * **pick** which tied entry to process (``return i``), overriding the
      sequence-number tie-break, or
    * **defer** one of them by a positive delay
      (``return ("defer", i, delta)``), re-enqueueing it at
      ``when + delta`` with a fresh sequence number — the bounded
      message-delay jitter the systematic explorer
      (:mod:`repro.check.explore`) uses to reorder in-flight deliveries.

    The default implementation always returns ``0`` (the seq-minimal
    entry), which reproduces the uncontrolled schedule exactly; with no
    controller installed the run loop below is untouched (one
    ``is not None`` guard), keeping default runs byte-identical.
    """

    def select(
        self,
        env: "Environment",
        when: float,
        priority: int,
        ready: "list[tuple[float, int, int, Event]]",
        next_time: float,
    ) -> "int | tuple[str, int, float]":
        """Choose among ``ready`` (seq-ordered ties at ``(when, priority)``).

        ``next_time`` is the time of the earliest pending entry *behind*
        the ready set (``inf`` when none), so deferral targets can be
        computed without touching the schedule.
        """
        return 0


class Environment:
    """A deterministic discrete-event simulation environment."""

    __slots__ = (
        "_now", "_queue", "_qpush", "_seq",
        "events_processed", "profiler", "controller",
    )

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue = CalendarQueue(origin=self._now)
        # Bound push, pre-resolved for the kernel hot sites (Timeout
        # construction, Event.succeed/fail, process bootstrap): one
        # attribute load instead of two on every schedule insert.
        self._qpush = self._queue.push
        self._seq = 0
        #: number of events processed so far (useful for progress/limits)
        self.events_processed = 0
        #: opt-in kernel profiler (:class:`repro.prof.KernelProfiler`);
        #: None keeps run() on the unprofiled fast loop (one guard)
        self.profiler: Optional[Any] = None
        #: opt-in schedule controller (:class:`ScheduleController`); None
        #: keeps run() on the uncontrolled fast loop (one guard)
        self.controller: Optional[ScheduleController] = None

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    # -- event factories -------------------------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(
        self,
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling (kernel-internal) ------------------------------------------

    def _enqueue(self, delay: float, priority: int, event: Event) -> None:
        # Reference scheduling path.  The kernel hot sites (Timeout
        # construction, Event.succeed/fail, process bootstrap) inline this
        # push; they must stay semantically identical to it.
        if event._scheduled:
            raise SimulationError(f"{event!r} scheduled twice")
        event._scheduled = True
        self._seq += 1
        self._queue.push((self._now + delay, priority, self._seq, event))

    def pending_entries(self) -> Iterator[Entry]:
        """Snapshot iterator over the scheduled ``(when, prio, seq, event)``
        entries (deterministic order, not time-sorted).  Read-only: used
        by the systematic explorer's independence checks and by tests."""
        return self._queue.entries()

    # -- execution ----------------------------------------------------------------

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when none remain.

        Pure read: safe to call from process/event callbacks while a run
        loop is mid-batch (the queue's ``next_time`` never restructures).
        """
        return self._queue.next_time()

    def _pop_next(self) -> Entry:
        """Pop the globally next schedule entry (the shared pop helper).

        :meth:`step` calls this per event; the run loops inline its
        batch form (``CalendarQueue._advance`` + pointer walk) over the
        very same structure, so single-step and batch execution follow
        one ordering authority (pinned by
        ``tests/sim/test_calendar.py::test_step_matches_run``).
        """
        entry = self._queue.pop()
        if entry is None:
            raise EmptySchedule("no events scheduled")
        return entry

    def step(self) -> None:
        """Process exactly one event.

        Raises :class:`EmptySchedule` when the schedule is empty, and
        re-raises the exception of any *failed* event that no process
        consumed (an uncaught failure anywhere in the simulation should
        crash the run loudly, never vanish).
        """
        when, _prio, _seq, event = self._pop_next()
        self._now = when
        self.events_processed += 1

        if event._value is _PENDING:
            # Auto-firing event (Timeout): materialise its value now.
            event._ok = True
            event._value = getattr(event, "_fire_value", None)

        callbacks = event.callbacks
        event.callbacks = None  # late add_callback() now runs synchronously
        event._processed = True
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            raise event._value

    def run(
        self,
        until: Optional[float | Event] = None,
        max_events: Optional[int] = None,
    ) -> Any:
        """Run the simulation.

        ``until`` may be a time (run until the clock would pass it), an
        :class:`Event` (run until it is processed, returning its value), or
        ``None`` (run the schedule dry).  ``max_events`` bounds the number of
        processed events as a runaway guard.

        The loop body is :meth:`step` inlined with the calendar queue's
        drain cursor held in locals, plus **batch draining**: every event
        tied at the current ``(time, priority)`` is consumed by one inner
        walk over the sorted current bucket — same-timestamp delivery
        bursts pay the outer-loop bookkeeping once, not per event
        (``benchmarks/bench_kernel.py --workload message-storm`` measures
        exactly this).  Ties created *during* the batch (zero-delay
        cascades) insert into the live tail and are swept up by the same
        walk.  :meth:`step` remains the reference implementation for
        single-step callers; the two must stay semantically identical.
        """
        if self.profiler is not None:
            # Single additive guard: profiled runs take a separate copy
            # of the loop so the unprofiled path below stays untouched.
            return self._run_profiled(until, max_events)
        if self.controller is not None:
            # Same additive pattern: controlled (explored) runs take
            # their own copy of the loop; the fast path stays untouched.
            return self._run_controlled(until, max_events)

        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError(f"until={stop_time} is in the past (now={self._now})")

        queue = self._queue
        advance = queue._advance
        processed_at_start = self.events_processed
        processed = self.events_processed
        try:
            while advance():
                if stop_event is not None and stop_event._processed:
                    break
                cur = queue._current
                cpos = queue._cpos
                head = cur[cpos]
                when = head[0]
                if when > stop_time:
                    self._now = stop_time
                    break
                prio = head[1]
                self._now = when
                # Batch-drain the (when, prio) tie class with a bare
                # pointer walk.  Drain state (queue cursor, processed
                # count) is synced to the queue only where user code can
                # observe or escape the loop — before callback dispatch
                # and at batch end — so the callback-free majority of a
                # delivery burst pays no bookkeeping stores at all.
                # `n` bounds indexing, not the batch: ties appended past
                # it are swept by the next advance() round, and the live
                # cur[cpos] re-read below keeps a same-time *urgent*
                # push correctly ordered (it breaks the batch).
                n = len(cur)
                if max_events is not None:
                    allowed = processed_at_start + max_events - processed
                    if allowed <= 0:
                        raise SimulationError(
                            f"exceeded max_events={max_events}"
                        )
                    if n - cpos > allowed:
                        n = cpos + allowed
                base = cpos
                while True:
                    event = cur[cpos][3]
                    cpos += 1

                    if event._value is _PENDING:
                        # Auto-firing event (Timeout): materialise its value.
                        event._ok = True
                        event._value = event._fire_value

                    callbacks = event.callbacks
                    event.callbacks = None
                    event._processed = True
                    if callbacks:
                        queue._cpos = cpos
                        processed += cpos - base
                        base = cpos
                        for callback in callbacks:
                            callback(event)

                    if not event._ok and not event._defused:
                        queue._cpos = cpos
                        processed += cpos - base
                        raise event._value
                    if stop_event is not None and stop_event._processed:
                        break
                    if cpos < n:
                        nxt = cur[cpos]
                        if nxt[0] == when and nxt[1] == prio:
                            continue
                    break
                queue._cpos = cpos
                processed += cpos - base
        finally:
            self.events_processed = processed

        if stop_event is not None:
            if not stop_event.triggered:
                raise SimulationError(
                    "run(until=event) exhausted the schedule before the event fired"
                )
            if not stop_event.ok:
                raise stop_event.value
            return stop_event.value
        if until is not None and stop_time != float("inf") and self._now < stop_time:
            # Schedule ran dry before the horizon: advance to it for callers
            # that compute rates over the requested window.
            self._now = stop_time
        return None

    def _run_profiled(
        self,
        until: Optional[float | Event] = None,
        max_events: Optional[int] = None,
    ) -> Any:
        """The run loop with kernel-profiler accounting.

        Must stay semantically identical to :meth:`run`: the profiler
        only counts (and, in wall mode, meters host time around)
        callback dispatches plus batch-drain shape — it never touches
        the schedule, so the processed event sequence is byte-identical
        to an unprofiled run.
        """
        from repro.prof.kernel import site_of  # lazy: only profiled runs

        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError(f"until={stop_time} is in the past (now={self._now})")

        prof = self.profiler
        counts = prof.counts
        event_counts = prof.event_counts
        wall_ns = prof.wall_ns
        clock = prof.clock
        queue = self._queue
        advance = queue._advance
        processed_at_start = self.events_processed
        processed = self.events_processed
        prof_events = prof.events
        prof_batches = prof.batches
        prof_max_batch = prof.max_batch
        try:
            while advance():
                if stop_event is not None and stop_event._processed:
                    break
                cur = queue._current
                cpos = queue._cpos
                head = cur[cpos]
                when = head[0]
                if when > stop_time:
                    self._now = stop_time
                    break
                prio = head[1]
                self._now = when
                prof_batches += 1
                batch_size = 0
                while True:
                    if (
                        max_events is not None
                        and processed - processed_at_start >= max_events
                    ):
                        raise SimulationError(f"exceeded max_events={max_events}")

                    event = cur[cpos][3]
                    cpos += 1
                    queue._cpos = cpos
                    processed += 1
                    prof_events += 1
                    batch_size += 1
                    kind = type(event).__name__
                    event_counts[kind] = event_counts.get(kind, 0) + 1

                    if event._value is _PENDING:
                        event._ok = True
                        event._value = event._fire_value

                    callbacks = event.callbacks
                    event.callbacks = None
                    event._processed = True
                    if clock is not None:
                        for callback in callbacks:
                            key = (kind, site_of(callback))
                            counts[key] = counts.get(key, 0) + 1
                            t0 = clock()
                            callback(event)
                            wall_ns[key] = wall_ns.get(key, 0) + clock() - t0
                    else:
                        for callback in callbacks:
                            key = (kind, site_of(callback))
                            counts[key] = counts.get(key, 0) + 1
                            callback(event)

                    if not event._ok and not event._defused:
                        raise event._value
                    if stop_event is not None and stop_event._processed:
                        break
                    if cpos < len(cur):
                        nxt = cur[cpos]
                        if nxt[0] == when and nxt[1] == prio:
                            continue
                    break
                if batch_size > prof_max_batch:
                    prof_max_batch = batch_size
        finally:
            self.events_processed = processed
            prof.events = prof_events
            prof.batches = prof_batches
            prof.max_batch = prof_max_batch

        if stop_event is not None:
            if not stop_event.triggered:
                raise SimulationError(
                    "run(until=event) exhausted the schedule before the event fired"
                )
            if not stop_event.ok:
                raise stop_event.value
            return stop_event.value
        if until is not None and stop_time != float("inf") and self._now < stop_time:
            self._now = stop_time
        return None

    def _run_controlled(
        self,
        until: Optional[float | Event] = None,
        max_events: Optional[int] = None,
    ) -> Any:
        """The run loop with schedule-controller choice points.

        Semantically :meth:`run` with two extra degrees of freedom at
        every pop, both exposed through :class:`ScheduleController`:
        the tie-break among entries at the minimal ``(time, priority)``
        becomes an explicit choice, and any ready entry may be deferred
        by a positive delay (a bounded message-delay jitter).  The ready
        set materialises as one contiguous slice of the calendar queue's
        sorted current bucket — a bucket scan, not repeated heap pops.
        A controller that always returns ``0`` reproduces the
        uncontrolled schedule event-for-event (pinned in the equivalence
        tests).
        """
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError(f"until={stop_time} is in the past (now={self._now})")

        controller = self.controller
        assert controller is not None
        queue = self._queue
        advance = queue._advance
        processed_at_start = self.events_processed
        processed = self.events_processed
        try:
            while advance():
                if stop_event is not None and stop_event._processed:
                    break
                cur = queue._current
                cpos = queue._cpos
                head = cur[cpos]
                when = head[0]
                if when > stop_time:
                    self._now = stop_time
                    break
                if (
                    max_events is not None
                    and processed - processed_at_start >= max_events
                ):
                    raise SimulationError(f"exceeded max_events={max_events}")

                # Materialise the ready set: the contiguous run of
                # entries tied at the minimal (time, priority).  The
                # current bucket is sorted, and a tie class can never
                # straddle a bucket boundary (equal times share one
                # bucket) or reach into the far heap, so the slice IS
                # the complete tie — no repeated pop/push.  It is
                # detached from the schedule while the controller
                # deliberates, exactly like the heap build popped it.
                prio = head[1]
                j = cpos + 1
                n = len(cur)
                while j < n and cur[j][0] == when and cur[j][1] == prio:
                    j += 1
                ready = cur[cpos:j]
                del cur[cpos:j]
                next_time = queue.next_time()

                choice = controller.select(self, when, prio, ready, next_time)
                if isinstance(choice, tuple):
                    kind, index, delta = choice
                    if kind != "defer" or not delta > 0.0:
                        raise SimulationError(
                            f"controller returned invalid choice {choice!r}"
                        )
                    deferred = ready.pop(index)
                    self._seq += 1
                    queue.push((when + delta, prio, self._seq, deferred[3]))
                    for entry in ready:
                        queue.push(entry)
                    continue

                when, _prio, _seq, event = ready.pop(choice)
                for entry in ready:
                    queue.push(entry)
                self._now = when
                processed += 1

                if event._value is _PENDING:
                    event._ok = True
                    event._value = event._fire_value

                callbacks = event.callbacks
                event.callbacks = None
                event._processed = True
                for callback in callbacks:
                    callback(event)

                if not event._ok and not event._defused:
                    raise event._value
        finally:
            self.events_processed = processed

        if stop_event is not None:
            if not stop_event.triggered:
                raise SimulationError(
                    "run(until=event) exhausted the schedule before the event fired"
                )
            if not stop_event.ok:
                raise stop_event.value
            return stop_event.value
        if until is not None and stop_time != float("inf") and self._now < stop_time:
            self._now = stop_time
        return None
