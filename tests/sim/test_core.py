"""Unit tests for the Environment event loop."""

import pytest

from repro.sim import Environment, SimulationError
from repro.sim.core import EmptySchedule


class TestClockAndRun:
    def test_initial_time(self):
        assert Environment().now == 0.0
        assert Environment(initial_time=10.5).now == 10.5

    def test_run_until_time_stops_clock_exactly(self, env):
        def body(env):
            while True:
                yield env.timeout(3)

        env.process(body(env))
        env.run(until=7)
        assert env.now == 7.0

    def test_run_until_time_in_past_rejected(self, env):
        env.run(until=5)
        with pytest.raises(ValueError):
            env.run(until=2)

    def test_run_until_event_returns_value(self, env):
        def body(env):
            yield env.timeout(2)
            return "val"

        p = env.process(body(env))
        assert env.run(until=p) == "val"
        assert env.now == 2.0

    def test_run_until_event_raises_on_failure(self, env):
        def body(env):
            yield env.timeout(1)
            raise ValueError("nope")

        p = env.process(body(env))
        with pytest.raises(ValueError, match="nope"):
            env.run(until=p)

    def test_run_until_never_fired_event_raises(self, env):
        ev = env.event()
        env.timeout(1)
        with pytest.raises(SimulationError, match="exhausted"):
            env.run(until=ev)

    def test_run_to_exhaustion(self, env):
        def body(env):
            yield env.timeout(4)

        env.process(body(env))
        env.run()
        assert env.now == 4.0

    def test_run_until_past_exhaustion_advances_clock(self, env):
        def body(env):
            yield env.timeout(2)

        env.process(body(env))
        env.run(until=100)
        assert env.now == 100.0

    def test_max_events_guard(self, env):
        def spinner(env):
            while True:
                yield env.timeout(1)

        env.process(spinner(env))
        with pytest.raises(SimulationError, match="max_events"):
            env.run(max_events=10)

    def test_events_processed_counter(self, env):
        def body(env):
            yield env.timeout(1)
            yield env.timeout(1)

        env.process(body(env))
        env.run()
        assert env.events_processed >= 3  # bootstrap + 2 timeouts


class TestStepAndPeek:
    def test_step_empty_raises(self, env):
        with pytest.raises(EmptySchedule):
            env.step()

    def test_peek_returns_next_event_time(self, env):
        env.timeout(5)
        env.timeout(3)
        assert env.peek() == 3.0

    def test_peek_empty_is_inf(self, env):
        assert env.peek() == float("inf")

    def test_step_advances_clock(self, env):
        env.timeout(2.5)
        env.step()
        assert env.now == 2.5

    def test_peek_inside_callbacks_does_not_perturb_the_run(self):
        # REVIEW regression: peek() used to restructure the calendar
        # queue (bucket adoption) under the batch-draining run loop's
        # locally held cursor, silently dropping the adopted bucket's
        # events.  A run with processes that peek between yields must be
        # byte-identical to one without.
        def worker(env, log, peeking):
            for i in range(4):
                yield env.timeout(0.001)
                if peeking:
                    env.peek()
                log.append((round(env.now, 9), i))

        def run(peeking):
            env = Environment()
            log = []
            for node in range(2):
                env.process(worker(env, log, peeking), name=f"n{node}")
            env.run()
            return env.events_processed, env.now, log

        assert run(True) == run(False)

    def test_time_never_goes_backwards(self, env):
        times = []

        def body(env, d):
            yield env.timeout(d)
            times.append(env.now)

        for d in [5, 1, 3, 2, 4]:
            env.process(body(env, d))
        env.run()
        assert times == sorted(times)


class TestDeterminism:
    @staticmethod
    def _run_once(seed):
        from repro.sim import RngRegistry

        env = Environment()
        rng = RngRegistry(seed=seed).stream("test")
        log = []

        def worker(env, wid):
            for _ in range(20):
                yield env.timeout(float(rng.uniform(0.1, 2.0)))
                log.append((round(env.now, 9), wid))

        for wid in range(5):
            env.process(worker(env, wid))
        env.run()
        return log

    def test_same_seed_same_trace(self):
        assert self._run_once(7) == self._run_once(7)

    def test_different_seed_different_trace(self):
        assert self._run_once(7) != self._run_once(8)

    def test_same_time_events_fire_in_schedule_order(self, env):
        order = []

        def body(env, tag):
            yield env.timeout(1.0)
            order.append(tag)

        for tag in "abcde":
            env.process(body(env, tag))
        env.run()
        assert order == list("abcde")


class TestSchedulingInvariants:
    def test_event_cannot_be_scheduled_twice(self, env):
        ev = env.event().succeed(1)
        with pytest.raises(SimulationError):
            env._enqueue(0.0, 1, ev)
