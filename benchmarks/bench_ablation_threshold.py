"""Ablation A1 — CL threshold sweep.

§IV-A: "At a certain point of the CL's threshold, we observe a peak point
of transactional throughput. Thus ... the CL's threshold corresponding to
the peak point is determined."  Sweeps fixed thresholds and the adaptive
controller at bench scale.
"""

import pytest

from benchmarks.conftest import run_cell

THRESHOLDS = (1, 3, 6, 12)


def _cell(threshold, bench_cache):
    return bench_cache(
        ("a1", threshold),
        lambda: run_cell("bank", "rts", 0.1, cl_threshold=threshold),
    )


def test_threshold_one_degenerates_to_tfa(bench_cache):
    """Threshold 1 never admits an enqueue: RTS collapses onto TFA."""
    rts1 = _cell(1, bench_cache)
    tfa = bench_cache(("a1", "tfa"), lambda: run_cell("bank", "tfa", 0.1))
    assert rts1.throughput == pytest.approx(tfa.throughput, rel=0.15)


@pytest.mark.parametrize("threshold", THRESHOLDS)
def test_every_threshold_makes_progress(threshold, bench_cache):
    assert _cell(threshold, bench_cache).commits > 0


def test_adaptive_tracks_best_fixed_threshold(bench_cache):
    """The adaptive controller lands within 20% of the best fixed point."""
    adaptive = bench_cache(
        ("a1", "adaptive"),
        lambda: run_cell("bank", "rts", 0.1, cl_threshold=None),
    )
    best = max(_cell(t, bench_cache).throughput for t in THRESHOLDS)
    assert adaptive.throughput >= best * 0.8


def test_benchmark_threshold_sweep(benchmark, bench_cache):
    result = benchmark.pedantic(
        lambda: run_cell("bank", "rts", 0.1, cl_threshold=6),
        rounds=1, iterations=1,
    )
    assert result.commits > 0
