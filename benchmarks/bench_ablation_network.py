"""Ablation A3 — link-delay band sensitivity.

The paper fixes static 1-50 ms links; this sweep shows how the delay band
moves throughput (communication-bound transactions) and that the
reproduction's conclusions are not an artefact of one band.
"""

import pytest

from benchmarks.conftest import run_cell
from repro.net.topology import MS

BANDS = {
    "paper": (1 * MS, 50 * MS),
    "fast": (1 * MS, 2 * MS),
    "slow": (50 * MS, 51 * MS),
}


def _cell(band, scheduler, bench_cache):
    lo, hi = BANDS[band]
    return bench_cache(
        ("a3", band, scheduler),
        lambda: run_cell("ll", scheduler, 0.1,
                         min_link_delay=lo, max_link_delay=hi),
    )


def test_faster_links_mean_more_throughput(bench_cache):
    fast = _cell("fast", "rts", bench_cache)
    paper = _cell("paper", "rts", bench_cache)
    slow = _cell("slow", "rts", bench_cache)
    assert fast.throughput > paper.throughput > slow.throughput


@pytest.mark.parametrize("band", list(BANDS))
def test_rts_abort_economy_holds_across_bands(band, bench_cache):
    rts = _cell(band, "rts", bench_cache)
    tfa = _cell(band, "tfa", bench_cache)
    assert rts.root_aborts <= tfa.root_aborts * 1.25 + 20


def test_benchmark_network_cell(benchmark):
    lo, hi = BANDS["paper"]
    result = benchmark.pedantic(
        lambda: run_cell("ll", "rts", 0.1, min_link_delay=lo, max_link_delay=hi),
        rounds=1, iterations=1,
    )
    assert result.commits > 0
