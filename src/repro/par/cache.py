"""The content-addressed on-disk cell cache.

Layout: ``<root>/<key[:2]>/<key>.json`` — one canonical-JSON file per
cell, enveloped with the package version and its own key so a reader
can reject stale or misplaced entries without trusting the path.

Write discipline: serialise to a per-writer temp file in the *same*
directory, then ``os.replace`` onto the final name.  The rename is
atomic on POSIX, so concurrent workers computing the same cell never
interleave bytes — and because both writers serialise the same
deterministic result through :func:`~repro.par.cells.canonical_json`,
last-writer-wins is also content-identical.

Read discipline: *any* failure (missing file, truncated JSON, version
mismatch, key mismatch) is a miss, never an exception — a corrupted
cache degrades to recomputation.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Optional

from repro import __version__
from repro.par.cells import canonical_json

__all__ = ["CellCache"]


class CellCache:
    """Maps cell keys to experiment-result dicts on disk."""

    def __init__(self, root: str | Path, version: str = __version__) -> None:
        self.root = Path(root)
        self.version = version
        #: entries served from disk
        self.hits = 0
        #: lookups that fell through to recomputation
        self.misses = 0
        #: misses caused by an unreadable/stale/foreign file (subset)
        self.invalid = 0
        #: entries written this session
        self.writes = 0

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # -- lookup -------------------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored result dict, or None (miss) — never raises."""
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            self.misses += 1
            return None
        try:
            payload = json.loads(text)
        except ValueError:
            self.invalid += 1
            self.misses += 1
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("version") != self.version
            or payload.get("key") != key
            or not isinstance(payload.get("result"), dict)
        ):
            self.invalid += 1
            self.misses += 1
            return None
        self.hits += 1
        return payload["result"]

    # -- store --------------------------------------------------------------

    def put(self, key: str, result: Dict[str, Any]) -> Path:
        """Atomically persist ``result`` under ``key``; returns the path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"version": self.version, "key": key, "result": result}
        # Same-directory temp file, unique per writer; os.replace is an
        # atomic rename, so readers see old bytes or new bytes, never a mix.
        tmp = path.parent / f".{key}.{os.getpid()}.tmp"
        tmp.write_text(canonical_json(payload), encoding="utf-8")
        os.replace(tmp, path)
        self.writes += 1
        return path

    # -- reporting ----------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalid": self.invalid,
            "writes": self.writes,
        }

    def __repr__(self) -> str:
        return (
            f"<CellCache {self.root} v{self.version} "
            f"hits={self.hits} misses={self.misses}>"
        )
