"""The trace-replay race detector — ``python -m repro.check.races run.jsonl``.

An offline opacity check over any obs JSONL export (``--trace-out`` from
the bench drivers, or :class:`repro.obs.sink.JsonlSink` directly).  It
rebuilds a happens-before order from the trace with per-node vector
clocks and then asks whether every pair of conflicting ownership
acquisitions is ordered by the commit protocol's migration chain:

* each event ticks its node's clock;
* ``dstm.grant`` (emitted at the requester when an object instals) joins
  the requester's clock with the serving node's — the object migration
  edge;
* ``rpc.done`` with ``ok`` joins the caller's clock with the callee's —
  the reply edge;
* ``dir.owner`` (emitted at the home when the registered owner changes)
  joins the home's clock with the new owner's — the registration edge.

The join edges use the *latest* clock of the peer at the trace point, so
the reconstructed order over-approximates true happens-before.  That
makes reports **sound**: a pair concurrent under the over-approximation
is concurrent under any refinement — two writable copies of one object
version were genuinely live at once (``race-unordered-write``).  Some
true races may be missed; none are invented.

``--strict`` adds ``race-version-regression``: an acquisition that
happens-before a later acquisition of the same object at a *smaller*
version.  Under partitions the protocol legitimately fences such
stragglers (they abort at validation), so this is a diagnostic lens, not
a default failure.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.check.rules import RACE_RULES

__all__ = ["Access", "Race", "detect_races", "replay", "main"]

_TASK_NODE_RE = re.compile(r"^task-n(\d+)-")

Clock = Dict[int, int]


def _join(a: Clock, b: Clock) -> None:
    """a |= b (elementwise max), in place."""
    for node, tick in b.items():
        if tick > a.get(node, 0):
            a[node] = tick


def _leq(a: Clock, b: Clock) -> bool:
    return all(tick <= b.get(node, 0) for node, tick in a.items())


def _concurrent(a: Clock, b: Clock) -> bool:
    return not _leq(a, b) and not _leq(b, a)


def _node_of(event: Dict[str, Any]) -> Optional[int]:
    """The node an event happened at, or None if unattributable."""
    node = event.get("node")
    if isinstance(node, str) and node.startswith("n"):
        return int(node[1:])
    if isinstance(node, int):
        return node
    if event.get("cat") == "dstm.grant":
        # Grants are emitted at the requester but carry no node field;
        # the root task id encodes its home node (task-n<id>-<seq>).
        m = _TASK_NODE_RE.match(str(event.get("txid", "")))
        if m:
            return int(m.group(1))
    return None


@dataclass(frozen=True)
class Access:
    """One ownership acquisition (an ACQUIRE-mode grant) seen in the trace."""

    oid: str
    version: int
    node: int
    time: float
    task: str
    clock: Tuple[Tuple[int, int], ...]  # frozen vector-clock snapshot

    def _clock_dict(self) -> Clock:
        return dict(self.clock)


@dataclass(frozen=True)
class Race:
    """A pair of conflicting accesses the protocol failed to order."""

    rule: str
    oid: str
    first: Access
    second: Access

    def render(self) -> str:
        a, b = self.first, self.second
        return (
            f"{self.rule}: {self.oid} "
            f"v{a.version}@n{a.node} t={a.time:.6f} ({a.task}) "
            f"{'||' if self.rule == 'race-unordered-write' else '->'} "
            f"v{b.version}@n{b.node} t={b.time:.6f} ({b.task})"
        )


@dataclass
class Replay:
    """The happens-before reconstruction of one trace."""

    events: int = 0
    attributed: int = 0
    edges: int = 0
    accesses: List[Access] = field(default_factory=list)


def replay(events: Iterable[Dict[str, Any]]) -> Replay:
    """Run the vector-clock reconstruction over a parsed event stream."""
    out = Replay()
    clocks: Dict[int, Clock] = {}
    for event in events:
        out.events += 1
        node = _node_of(event)
        if node is None:
            continue
        out.attributed += 1
        vc = clocks.setdefault(node, {})
        vc[node] = vc.get(node, 0) + 1
        cat = event.get("cat")
        peer: Optional[int] = None
        if cat == "dstm.grant":
            peer = event.get("served_by")
        elif cat == "rpc.done" and event.get("ok"):
            peer = event.get("dst")
        elif cat == "dir.owner":
            owner = event.get("owner")
            # A reclaim registers the home itself as owner; there is no
            # message edge from anyone in that case.
            peer = owner if owner != node else None
        if isinstance(peer, int) and peer != node and peer in clocks:
            _join(vc, clocks[peer])
            out.edges += 1
        if cat == "dstm.grant" and event.get("mode") == "a":
            out.accesses.append(
                Access(
                    oid=str(event.get("sub")),
                    version=int(event.get("version", -1)),
                    node=node,
                    time=float(event.get("t", 0.0)),
                    task=str(event.get("txid", "?")),
                    clock=tuple(sorted(vc.items())),
                )
            )
    return out


def detect_races(events: Iterable[Dict[str, Any]],
                 strict: bool = False) -> Tuple[Replay, List[Race]]:
    """Replay the trace and report unordered conflicting acquisitions."""
    out = replay(events)
    races: List[Race] = []
    by_oid: Dict[str, List[Access]] = {}
    for access in out.accesses:
        by_oid.setdefault(access.oid, []).append(access)
    for oid in sorted(by_oid):
        accesses = by_oid[oid]  # already in trace (time) order
        for i, a in enumerate(accesses):
            a_clock = a._clock_dict()
            for b in accesses[i + 1:]:
                b_clock = b._clock_dict()
                if a.version == b.version and _concurrent(a_clock, b_clock):
                    # Two writable copies of one version were live at
                    # once: the migration chain never ordered them.
                    races.append(Race("race-unordered-write", oid, a, b))
                elif (
                    strict
                    and b.version < a.version
                    and _leq(a_clock, b_clock)
                ):
                    # The chain ordered them, but version order ran
                    # backwards along it (strict-mode diagnostic).
                    races.append(Race("race-version-regression", oid, a, b))
    return out, races


def load_events(path: str) -> List[Dict[str, Any]]:
    """Parse an obs JSONL export (skipping blank lines)."""
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise SystemExit(f"{path}:{lineno}: not valid JSON: {exc}")
    return events


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check.races", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("trace", help="obs JSONL export to check")
    parser.add_argument("--strict", action="store_true",
                        help="also report race-version-regression")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable output")
    parser.add_argument("--max-report", type=int, default=20,
                        help="cap the printed races (all still counted)")
    args = parser.parse_args(argv)

    events = load_events(args.trace)
    out, races = detect_races(events, strict=args.strict)

    if args.json:
        print(json.dumps(
            {
                "trace": args.trace,
                "events": out.events,
                "attributed": out.attributed,
                "hb_edges": out.edges,
                "acquisitions": len(out.accesses),
                "races": [
                    {"rule": r.rule, "oid": r.oid,
                     "first": {"node": r.first.node, "version": r.first.version,
                               "t": r.first.time, "task": r.first.task},
                     "second": {"node": r.second.node, "version": r.second.version,
                                "t": r.second.time, "task": r.second.task}}
                    for r in races
                ],
                "ok": not races,
            },
            indent=2,
        ))
    else:
        for race in races[: args.max_report]:
            print(race.render())
        if len(races) > args.max_report:
            print(f"... and {len(races) - args.max_report} more")
        print(
            f"repro.check.races: {out.events} events, {out.attributed} "
            f"attributed, {out.edges} hb edges, {len(out.accesses)} "
            f"acquisitions, {len(races)} race(s)"
        )
        for rule_id in sorted({r.rule for r in races}):
            print(f"  {rule_id}: {RACE_RULES[rule_id].summary}")
    return 1 if races else 0


if __name__ == "__main__":
    sys.exit(main())
