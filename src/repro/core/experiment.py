"""The experiment harness: one call = one cell of a paper table/figure.

:func:`run_experiment` builds a cluster from a :class:`ClusterConfig`,
instantiates a workload by name, executes it, and returns an
:class:`ExperimentResult` with everything the analysis layer needs —
throughput, abort accounting, and the Table-I nested-abort rate.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Optional

from repro.core.cluster import Cluster
from repro.core.config import ClusterConfig, SchedulerKind
from repro.core.executor import WorkloadExecutor

__all__ = ["ExperimentResult", "run_experiment"]

#: table-rendering float precision, shared by the named metrics and
#: everything inside ``extra`` (one normalisation point — see row())
_ROW_NDIGITS = 4


def _round_value(value: Any, ndigits: int = _ROW_NDIGITS) -> Any:
    """Round floats (recursing into dicts/lists/tuples) for table rows.

    ``extra`` carries whatever the enabled subsystems measured; without
    this, raw floats (mean batch sizes, hit rates, ...) print at full
    precision and make otherwise-identical tables diff noisily.
    """
    if isinstance(value, float):
        return round(value, ndigits)
    if isinstance(value, dict):
        return {k: _round_value(v, ndigits) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_round_value(v, ndigits) for v in value]
    return value


@dataclass
class ExperimentResult:
    """Measured outcome of one experiment cell."""

    workload: str
    scheduler: str
    num_nodes: int
    read_fraction: float
    seed: int
    horizon: Optional[float]
    commits: int
    root_aborts: int
    throughput: float
    abort_ratio: float
    nested_abort_rate: float
    nested_aborts_own: int
    nested_aborts_parent: int
    mean_commit_latency: float
    messages_sent: int
    sim_events: int
    extra: Dict[str, Any] = field(default_factory=dict)

    def row(self) -> Dict[str, Any]:
        """Flat dict for table rendering."""
        out = {
            "workload": self.workload,
            "scheduler": self.scheduler,
            "nodes": self.num_nodes,
            "read%": int(round(self.read_fraction * 100)),
            "commits": self.commits,
            "aborts": self.root_aborts,
            "throughput": round(self.throughput, 2),
            "abort_ratio": round(self.abort_ratio, _ROW_NDIGITS),
            "nested_abort_rate": round(self.nested_abort_rate, _ROW_NDIGITS),
        }
        out.update({k: _round_value(v) for k, v in self.extra.items()})
        return out

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (what ``repro.par`` caches and ships between
        processes); exact — no rounding."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentResult":
        """Inverse of :meth:`to_dict`."""
        return cls(**data)


def run_experiment(
    workload_name: str,
    config: ClusterConfig,
    read_fraction: float = 0.9,
    workers_per_node: int = 2,
    horizon: Optional[float] = 20.0,
    stop_after_commits: Optional[int] = None,
    workload_kwargs: Optional[Dict[str, Any]] = None,
    executor_kwargs: Optional[Dict[str, Any]] = None,
) -> ExperimentResult:
    """Run one (workload, config) cell and collect the metrics."""
    from repro.workloads.registry import make_workload

    workload = make_workload(
        workload_name, read_fraction=read_fraction, **(workload_kwargs or {})
    )
    cluster = Cluster(config)
    if cluster.payload_plane is not None and workload.payload_size is not None:
        # The workload's declared size spec becomes the plane-wide
        # default before any alloc() runs in executor.setup().
        cluster.payload_plane.default_size = int(workload.payload_size)
    if config.arrival.enabled:
        # Lazy import: repro.traffic imports repro.core right back.
        from repro.traffic.engine import OpenLoopExecutor

        if stop_after_commits is not None:
            raise ValueError(
                "stop_after_commits is a closed-loop stop condition; "
                "open-loop runs stop at the horizon"
            )
        executor = OpenLoopExecutor(
            cluster,
            workload,
            config.arrival,
            service_workers=workers_per_node,
            horizon=horizon,
            **(executor_kwargs or {}),
        )
    else:
        executor = WorkloadExecutor(
            cluster,
            workload,
            workers_per_node=workers_per_node,
            horizon=horizon,
            stop_after_commits=stop_after_commits,
            **(executor_kwargs or {}),
        )
    executor.setup()
    executor.run()
    obs_summary = cluster.finish_obs()

    m = cluster.metrics
    return ExperimentResult(
        workload=workload.name,
        scheduler=config.scheduler.value,
        num_nodes=config.num_nodes,
        read_fraction=read_fraction,
        seed=config.seed,
        horizon=horizon,
        commits=m.commits.value,
        root_aborts=m.root_aborts.value,
        throughput=executor.throughput(),
        abort_ratio=m.abort_ratio(),
        nested_abort_rate=m.nested_abort_rate(),
        nested_aborts_own=m.nested_aborts_own.value,
        nested_aborts_parent=m.nested_aborts_parent.value,
        mean_commit_latency=m.commit_latency.mean,
        messages_sent=cluster.network.messages_sent.value,
        sim_events=cluster.env.events_processed,
        extra=_extra(cluster, executor, obs_summary),
    )


def _extra(
    cluster: Cluster,
    executor: Any,
    obs_summary: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    extra: Dict[str, Any] = {"abandoned": executor.abandoned}
    if cluster.config.arrival.enabled:
        extra.update(executor.traffic_summary())
    if obs_summary is not None:
        extra["obs_events"] = cluster.obs.events if cluster.obs is not None else 0
        extra["obs"] = obs_summary
    if cluster.config.faults.enabled:
        m = cluster.metrics
        extra.update(
            fault_drops=m.fault_drops.value,
            fault_duplicates=m.fault_duplicates.value,
            rpc_timeouts=m.rpc_timeouts.value,
            rpc_retries=m.rpc_retries.value,
            lease_reclaims=m.lease_reclaims.value,
            crash_aborts=m.crash_aborts.value,
            orphan_returns=m.orphan_returns.value,
        )
    rc = cluster.config.rpc
    if rc.cache:
        cs = cluster.rpc_cache_stats()
        extra.update(
            rpc_cache_hits=int(cs["cache_hits"]),
            rpc_cache_misses=int(cs["cache_misses"]),
            rpc_cache_hit_rate=round(cs["cache_hit_rate"], 4),
            rpc_cache_fences=int(cs["cache_fences"]),
        )
    if rc.batch_window > 0.0:
        bs = cluster.rpc_batch_stats()
        extra.update(
            rpc_batches=int(bs["batches"]),
            rpc_batched_messages=int(bs["batched_messages"]),
            rpc_mean_batch=round(bs["mean_batch"], 3),
            rpc_max_batch=int(bs["max_batch"]),
        )
    if cluster.payload_plane is not None:
        ps = cluster.payload_stats()
        extra.update(
            payload_mode="proxy" if cluster.payload_plane.proxy_mode else "eager",
            payload_bytes_on_wire=int(ps["payload_bytes_on_wire"]),
            control_bytes_on_wire=int(ps["control_bytes_on_wire"]),
            grant_bytes_on_wire=int(ps["grant_bytes_on_wire"]),
            payload_fetch_bytes=int(ps["payload_fetch_bytes"]),
            payload_fetches=int(ps["payload_fetches"]),
            payload_cache_hits=int(ps["payload_cache_hits"]),
            payload_cache_hit_rate=round(ps["payload_cache_hit_rate"], 4),
        )
    if cluster.profiler is not None:
        pc = cluster.config.prof
        extra["prof"] = cluster.profiler.snapshot()
        if pc.folded_path:
            cluster.profiler.write_folded(pc.folded_path)
        if pc.chrome_path:
            cluster.profiler.write_chrome(pc.chrome_path)
    return extra
